"""Tests for the query-serving robustness layer (repro.service)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.join import similarity_join
from repro.core.spbtree import SPBTree
from repro.distance import EditDistance, EuclideanDistance
from repro.service import (
    BudgetExceeded,
    CancelToken,
    Overloaded,
    QueryCancelled,
    QueryContext,
    QueryEngine,
    QueryResult,
)
from repro.stats import QueryStats, push_stat_shard
from repro.storage.faults import FaultInjector


@pytest.fixture(scope="module")
def word_tree(small_words):
    return SPBTree.build(small_words, EditDistance(), seed=7), small_words


class TestQueryContext:
    def test_no_limits_never_exhausts(self):
        ctx = QueryContext()
        ctx.compdists = 10**9
        ctx.page_accesses = 10**9
        assert ctx.exhausted() is None

    def test_budget_is_inclusive(self):
        ctx = QueryContext(max_compdists=5)
        ctx.compdists = 5
        assert ctx.exhausted() is None
        ctx.compdists = 6
        reason = ctx.exhausted()
        assert reason is not None and reason.kind == "compdists"
        assert reason.limit == 5 and reason.spent == 6

    def test_page_budget(self):
        ctx = QueryContext(max_page_accesses=3)
        ctx.page_accesses = 4
        assert ctx.exhausted().kind == "page_accesses"

    def test_deadline(self):
        ctx = QueryContext.with_limits(deadline_ms=0.0)
        time.sleep(0.002)
        assert ctx.exhausted().kind == "deadline"

    def test_cancellation(self):
        token = CancelToken()
        ctx = QueryContext(cancel_token=token)
        assert ctx.exhausted() is None
        token.cancel()
        assert ctx.exhausted().kind == "cancelled"

    def test_shard_attribution_is_per_thread(self, small_words):
        tree = SPBTree.build(small_words, EditDistance(), seed=7)
        ctx = QueryContext()
        before = tree.distance_computations
        with ctx.activate():
            tree.range_query(small_words[0], 1)
        # Everything the query spent was credited to the context as well.
        assert ctx.compdists == tree.distance_computations - before
        assert ctx.compdists > 0
        assert ctx.page_accesses > 0


class TestQueryResultContract:
    def test_no_context_returns_plain_list(self, word_tree):
        tree, words = word_tree
        out = tree.range_query(words[0], 1)
        assert isinstance(out, list) and not isinstance(out, QueryResult)
        out = tree.knn_query(words[0], 3)
        assert isinstance(out, list)
        assert isinstance(tree.range_count(words[0], 1), int)

    def test_unlimited_context_matches_plain(self, word_tree):
        tree, words = word_tree
        q = words[1]
        plain_range = tree.range_query(q, 2)
        plain_knn = tree.knn_query(q, 5)
        plain_count = tree.range_count(q, 2)
        ctx = QueryContext()
        r = tree.range_query(q, 2, context=ctx)
        assert isinstance(r, QueryResult) and r.complete and r.reason is None
        assert list(r) == plain_range
        k = tree.knn_query(q, 5, context=QueryContext())
        assert k.complete and list(k) == plain_knn
        c = tree.range_count(q, 2, context=QueryContext())
        assert c.complete and c.count == plain_count

    def test_context_counters_match_global_deltas(self, word_tree):
        tree, words = word_tree
        q = words[2]
        ctx = QueryContext()
        pa0, dc0 = tree.page_accesses, tree.distance_computations
        tree.knn_query(q, 4, context=ctx)
        assert ctx.compdists == tree.distance_computations - dc0
        assert ctx.page_accesses == tree.page_accesses - pa0

    def test_sequence_protocol(self):
        r = QueryResult([("a", 1), ("b", 2)])
        assert len(r) == 2
        assert r[0] == ("a", 1)
        assert list(r) == [("a", 1), ("b", 2)]
        assert r == [("a", 1), ("b", 2)]
        assert "partial" not in repr(r)


class TestGracefulDegradation:
    def test_knn_partial_is_prefix_of_true_distances(self, word_tree):
        tree, words = word_tree
        q = words[3]
        k = 10
        true_d = [d for d, _ in tree.knn_query(q, k)]
        saw_partial = False
        for budget in (6, 12, 25, 50, 100, 200, 400):
            ctx = QueryContext(max_compdists=budget)
            result = tree.knn_query(q, k, context=ctx)
            assert len(result) <= k
            got = [d for d, _ in result]
            if not result.complete:
                saw_partial = True
                assert result.reason.kind == "compdists"
            # Complete or not, the distances must be a prefix of the truth.
            assert got == true_d[: len(got)]
        assert saw_partial

    def test_knn_partial_under_page_budget(self, word_tree):
        tree, words = word_tree
        q = words[4]
        true_d = [d for d, _ in tree.knn_query(q, 8)]
        ctx = QueryContext(max_page_accesses=2)
        result = tree.knn_query(q, 8, context=ctx)
        got = [d for d, _ in result]
        assert got == true_d[: len(got)]

    def test_range_partial_hits_are_verified_subset(self, word_tree):
        tree, words = word_tree
        q = words[5]
        full = tree.range_query(q, 3)
        ctx = QueryContext(max_compdists=15)
        result = tree.range_query(q, 3, context=ctx)
        assert not result.complete
        assert result.reason.kind == "compdists"
        metric = EditDistance()
        for obj in result:
            assert metric(q, obj) <= 3
            assert obj in full

    def test_count_partial_is_lower_bound(self, word_tree):
        tree, words = word_tree
        q = words[6]
        full = tree.range_count(q, 3)
        ctx = QueryContext(max_compdists=10)
        result = tree.range_count(q, 3, context=ctx)
        assert not result.complete
        assert 0 <= result.count <= full

    def test_strict_mode_raises(self, word_tree):
        tree, words = word_tree
        ctx = QueryContext(max_compdists=5, strict=True)
        with pytest.raises(BudgetExceeded) as exc_info:
            tree.knn_query(words[0], 5, context=ctx)
        assert exc_info.value.reason.kind == "compdists"
        with pytest.raises(BudgetExceeded):
            tree.range_query(
                words[0], 2, context=QueryContext(max_compdists=5, strict=True)
            )

    def test_cancellation_mid_query(self, word_tree):
        tree, words = word_tree
        token = CancelToken()
        token.cancel()  # cancelled before it starts: nothing gets done
        ctx = QueryContext(cancel_token=token)
        result = tree.knn_query(words[0], 5, context=ctx)
        assert not result.complete
        assert result.reason.kind == "cancelled"
        assert len(result) == 0

    def test_cancellation_strict_raises(self, word_tree):
        tree, words = word_tree
        token = CancelToken()
        token.cancel()
        ctx = QueryContext(cancel_token=token, strict=True)
        with pytest.raises(QueryCancelled):
            tree.range_query(words[0], 2, context=ctx)

    def test_deadline_degrades_not_raises(self, word_tree):
        tree, words = word_tree
        ctx = QueryContext.with_limits(deadline_ms=0.0)
        result = tree.knn_query(words[0], 5, context=ctx)
        assert not result.complete
        assert result.reason.kind == "deadline"


class TestJoinDegradation:
    @pytest.fixture(scope="class")
    def join_trees(self, small_words):
        half = len(small_words) // 2
        set_q, set_o = small_words[:half], small_words[half:]
        metric = EditDistance()
        tree_o = SPBTree.build(set_o, metric, curve="z", seed=7)
        tree_q = SPBTree.build(
            set_q,
            metric,
            curve="z",
            pivots=tree_o.space.pivots,
            d_plus=tree_o.space.d_plus,
            delta=tree_o.space.delta,
            seed=7,
        )
        return tree_q, tree_o

    def test_unlimited_context_matches_plain(self, join_trees):
        tree_q, tree_o = join_trees
        plain = similarity_join(tree_q, tree_o, 2.0)
        ctx = QueryContext()
        with_ctx = similarity_join(tree_q, tree_o, 2.0, context=ctx)
        assert with_ctx.complete
        assert sorted(map(repr, with_ctx.pairs)) == sorted(map(repr, plain.pairs))
        assert ctx.compdists > 0

    def test_budget_partial_pairs_are_correct_subset(self, join_trees):
        tree_q, tree_o = join_trees
        plain = similarity_join(tree_q, tree_o, 2.0)
        ctx = QueryContext(max_compdists=plain.stats.distance_computations // 3)
        partial = similarity_join(tree_q, tree_o, 2.0, context=ctx)
        assert not partial.complete
        assert partial.reason.kind == "compdists"
        assert len(partial.pairs) <= len(plain.pairs)
        all_pairs = {(repr(a), repr(b)) for a, b in plain.pairs}
        for a, b in partial.pairs:
            assert (repr(a), repr(b)) in all_pairs

    def test_strict_mode_raises(self, join_trees):
        tree_q, tree_o = join_trees
        ctx = QueryContext(max_compdists=1, strict=True)
        with pytest.raises(BudgetExceeded):
            similarity_join(tree_q, tree_o, 2.0, context=ctx)


def _same_pairs(got, expected):
    """Compare (distance, object) lists where objects may be numpy arrays."""
    assert len(got) == len(expected)
    for (d1, o1), (d2, o2) in zip(got, expected):
        assert d1 == d2 and repr(o1) == repr(o2)


def _same_objects(got, expected):
    assert [repr(o) for o in got] == [repr(o) for o in expected]


class _GatedMetric(EuclideanDistance):
    """A metric that can be made to block, for backpressure tests."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.gate.set()

    def __call__(self, a, b):
        self.gate.wait(timeout=30)
        return super().__call__(a, b)


class TestQueryEngine:
    def test_submit_requires_started_engine(self, small_vectors):
        tree = SPBTree.build(small_vectors, EuclideanDistance(), seed=7)
        engine = QueryEngine(tree)
        with pytest.raises(RuntimeError):
            engine.submit("range", small_vectors[0], 0.5)

    def test_basic_serving(self, small_vectors):
        tree = SPBTree.build(small_vectors, EuclideanDistance(), seed=7)
        expected = tree.knn_query(small_vectors[0], 4)
        with QueryEngine(tree, workers=2) as engine:
            result = engine.knn(small_vectors[0], 4)
            assert result.complete
            _same_pairs(list(result), expected)
            assert engine.served == 1 and engine.failed == 0

    def test_mixed_kinds(self, small_vectors):
        tree = SPBTree.build(small_vectors, EuclideanDistance(), seed=7)
        q = small_vectors[1]
        with QueryEngine(tree, workers=3) as engine:
            r = engine.range(q, 0.5)
            k = engine.knn(q, 3)
            c = engine.count(q, 0.5)
        _same_objects(list(r), tree.range_query(q, 0.5))
        _same_pairs(list(k), tree.knn_query(q, 3))
        assert c.count == tree.range_count(q, 0.5)

    def test_per_query_budgets_degrade(self, small_vectors):
        tree = SPBTree.build(small_vectors, EuclideanDistance(), seed=7)
        with QueryEngine(tree, workers=2) as engine:
            result = engine.knn(small_vectors[0], 8, max_compdists=10)
            assert not result.complete
            assert engine.degraded == 1

    def test_overloaded_rejection(self, small_vectors):
        metric = _GatedMetric()
        tree = SPBTree.build(small_vectors, metric, seed=7)
        metric.gate.clear()  # every query now blocks inside the metric
        engine = QueryEngine(tree, workers=1, max_queue=2).start()
        try:
            held = [engine.submit("knn", small_vectors[0], 2)]
            deadline = time.monotonic() + 5
            # Fill the worker plus the whole queue, then expect rejection.
            with pytest.raises(Overloaded):
                while time.monotonic() < deadline:
                    held.append(engine.submit("knn", small_vectors[0], 2))
            assert engine.rejected >= 1
        finally:
            metric.gate.set()
            for pending in held:
                pending.result(timeout=30)
            engine.stop()

    def test_cancel_pending_query(self, small_vectors):
        metric = _GatedMetric()
        tree = SPBTree.build(small_vectors, metric, seed=7)
        metric.gate.clear()
        engine = QueryEngine(tree, workers=1, max_queue=4).start()
        try:
            pending = engine.submit("knn", small_vectors[0], 4)
            pending.cancel()
            metric.gate.set()
            result = pending.result(timeout=30)
            assert not result.complete
            assert result.reason.kind == "cancelled"
        finally:
            metric.gate.set()
            engine.stop()

    def test_transient_faults_are_retried(self, small_vectors):
        tree = SPBTree.build(
            small_vectors, EuclideanDistance(), seed=7,
            cache_pages=0, checksums=True,
        )
        q = small_vectors[2]
        expected = tree.knn_query(q, 4)
        injector = FaultInjector(tree.raf.pagefile, seed=11, io_error_rate=0.02)
        tree.raf.pagefile = injector
        tree.raf.buffer_pool.pagefile = injector
        try:
            with QueryEngine(tree, workers=2, retry_attempts=8,
                             retry_base_delay=0.001) as engine:
                for _ in range(5):
                    result = engine.knn(q, 4)
                    assert result.complete
                    _same_pairs(list(result), expected)
            assert injector.injected["io_error"] > 0
        finally:
            tree.raf.pagefile = injector.inner
            tree.raf.buffer_pool.pagefile = injector.inner

    def test_retry_reports_clean_attempt_counters(self, small_vectors):
        """A retried query's counters match a fault-free run of the same
        query (fresh per attempt), with caching disabled for determinism."""
        tree = SPBTree.build(
            small_vectors, EuclideanDistance(), seed=7, cache_pages=0
        )
        q = small_vectors[3]
        clean_ctx = QueryContext()
        tree.knn_query(q, 4, context=clean_ctx)
        injector = FaultInjector(tree.raf.pagefile, seed=2, io_error_rate=0.05)
        tree.raf.pagefile = injector
        tree.raf.buffer_pool.pagefile = injector
        try:
            with QueryEngine(tree, workers=1, retry_attempts=10,
                             retry_base_delay=0.001) as engine:
                pending = engine.submit("knn", q, 4)
                result = pending.result(timeout=60)
                assert result.complete
                assert pending.context.compdists == clean_ctx.compdists
                assert pending.context.page_accesses == clean_ctx.page_accesses
        finally:
            tree.raf.pagefile = injector.inner
            tree.raf.buffer_pool.pagefile = injector.inner


class _ShardLeakingTree:
    """Delegating wrapper that fails its first query mid-flight with a stat
    shard still pushed — simulating a buggy traversal that escapes between
    a push and its matching pop."""

    def __init__(self, tree):
        self._tree = tree
        self._leak_next = True

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def knn_query(self, *args, **kwargs):
        if self._leak_next:
            self._leak_next = False
            push_stat_shard(QueryStats())
            raise ValueError("failed mid-query with a shard still pushed")
        return self._tree.knn_query(*args, **kwargs)


class TestShardLeakGuard:
    def test_leaked_shard_does_not_poison_next_query(self, small_vectors):
        """The worker trims any shard an attempt leaked; the next query on
        the same thread must tally into its own context, not a dead one."""
        tree = SPBTree.build(
            small_vectors, EuclideanDistance(), seed=7, cache_pages=0
        )
        q = small_vectors[4]
        clean_ctx = QueryContext()
        tree.knn_query(q, 4, context=clean_ctx)
        leaky = _ShardLeakingTree(tree)
        with QueryEngine(leaky, workers=1, retry_attempts=2,
                         retry_base_delay=0.0) as engine:
            first = engine.submit("knn", q, 4)
            with pytest.raises(ValueError):
                first.result(timeout=60)
            probe = engine.submit("knn", q, 4)
            result = probe.result(timeout=60)
        assert result.complete
        assert probe.context.compdists == clean_ctx.compdists
        assert probe.context.page_accesses == clean_ctx.page_accesses


class _GatedTree:
    """Delegating wrapper whose queries block until released — for pinning
    the result(timeout=...) contract deterministically."""

    def __init__(self, tree):
        self._tree = tree
        self.gate = threading.Event()

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def knn_query(self, *args, **kwargs):
        assert self.gate.wait(timeout=60)
        return self._tree.knn_query(*args, **kwargs)


class TestPendingResultTimeout:
    def test_timeout_raises_without_cancelling(self, small_vectors):
        """A timed-out result() wait raises TimeoutError but must NOT kill
        the query: it keeps running, and a later result() collects it."""
        tree = SPBTree.build(
            small_vectors[:100], EuclideanDistance(), seed=7, cache_pages=0
        )
        gated = _GatedTree(tree)
        with QueryEngine(gated, workers=1) as engine:
            pending = engine.submit("knn", small_vectors[3], 4)
            with pytest.raises(TimeoutError):
                pending.result(timeout=0.05)
            # The timed-out wait had no side effects on the query.
            assert not pending.done
            assert not pending.context.cancel_token.cancelled
            gated.gate.set()
            result = pending.result(timeout=60)
        assert result.complete
        assert len(result) == 4


class TestStopFailsFastOnUnstartedWork:
    def test_item_behind_stop_tokens_gets_engine_stopped(self, small_vectors):
        """Regression: a query that raced past the stopped check and landed
        behind the _STOP tokens must fail fast with EngineStopped, not
        block its result() caller until timeout."""
        from repro.service import EngineStopped
        from repro.service.engine import PendingQuery

        tree = SPBTree.build(small_vectors[:100], EuclideanDistance(), seed=7)
        engine = QueryEngine(tree, workers=2).start()
        engine.stop(wait=False)
        # Simulate the loser of the submit-vs-stop race: an item enqueued
        # behind the stop tokens, which no worker will ever execute.
        straggler = PendingQuery(
            "knn", (small_vectors[0], 3), QueryContext.with_limits()
        )
        engine._queue.put(straggler)
        engine.stop(wait=True)  # join-and-drain
        assert straggler.done
        with pytest.raises(EngineStopped):
            straggler.result(timeout=0)
        assert engine.stopped_unstarted == 1

    def test_queued_work_still_drains_on_normal_stop(self, small_vectors):
        """The fix must not change the healthy path: work queued before
        stop() executes to completion (pinned also in test_chaos)."""
        tree = SPBTree.build(small_vectors[:100], EuclideanDistance(), seed=7)
        engine = QueryEngine(tree, workers=2).start()
        pendings = [engine.submit("knn", small_vectors[i], 3) for i in range(6)]
        engine.stop(wait=True)
        for pending in pendings:
            assert pending.result(timeout=0).complete
        assert engine.stopped_unstarted == 0


class TestOverloadedHints:
    def test_fields_default_to_none(self):
        exc = Overloaded("queue full")
        assert exc.queue_depth is None and exc.retry_after_ms is None

    def test_rejection_carries_queue_depth_and_backoff_hint(
        self, small_vectors
    ):
        metric = _GatedMetric()
        tree = SPBTree.build(small_vectors, metric, seed=7)
        metric.gate.clear()
        engine = QueryEngine(tree, workers=1, max_queue=2).start()
        held = [engine.submit("knn", small_vectors[0], 2)]
        try:
            deadline = time.monotonic() + 5.0
            while engine.queue_depth > 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            for _ in range(engine._queue.maxsize):
                held.append(engine.submit("knn", small_vectors[0], 2))
            with pytest.raises(Overloaded) as exc_info:
                engine.submit("knn", small_vectors[1], 2)
            exc = exc_info.value
            assert exc.queue_depth == engine._queue.maxsize
            assert exc.retry_after_ms is not None
            assert exc.retry_after_ms >= 1.0
        finally:
            metric.gate.set()
            for pending in held:
                pending.result(timeout=30)
            engine.stop()

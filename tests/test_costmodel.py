"""Tests for the cost models (eqs. 1-8)."""

import numpy as np
import pytest

from repro.core.costmodel import CostModel
from repro.core.join import similarity_join
from repro.core.pivots import select_pivots
from repro.core.spbtree import SPBTree
from repro.datasets import generate_words
from repro.distance import EditDistance, EuclideanDistance


@pytest.fixture(scope="module")
def tree_and_model():
    rng = np.random.default_rng(3)
    centers = rng.normal(size=(4, 4))
    data = [centers[i % 4] + rng.normal(scale=0.4, size=4) for i in range(600)]
    metric = EuclideanDistance()
    tree = SPBTree.build(data, metric, num_pivots=3, seed=1)
    return tree, CostModel(tree), data, metric


class TestRangeModel:
    def test_edc_close_to_actual(self, tree_and_model):
        tree, model, data, metric = tree_and_model
        rng = np.random.default_rng(9)
        ratios = []
        for _ in range(10):
            q = rng.normal(size=4)
            estimate = model.estimate_range(q, 1.0)
            tree.reset_counters()
            tree.range_query(q, 1.0)
            actual = tree.distance_computations
            if actual:
                ratios.append(estimate.edc / actual)
        assert 0.7 <= float(np.mean(ratios)) <= 1.3

    def test_edc_grows_with_radius(self, tree_and_model):
        tree, model, data, _ = tree_and_model
        q = data[0]
        estimates = [model.estimate_range(q, r).edc for r in (0.2, 1.0, 3.0)]
        assert estimates == sorted(estimates)

    def test_edc_at_least_num_pivots(self, tree_and_model):
        _, model, data, _ = tree_and_model
        est = model.estimate_range(data[0], 0.0)
        assert est.edc >= 3  # the |P| term of eq. 3

    def test_epa_positive(self, tree_and_model):
        _, model, data, _ = tree_and_model
        assert model.estimate_range(data[0], 0.5).epa > 0

    def test_estimation_does_not_touch_counters(self, tree_and_model):
        tree, model, data, _ = tree_and_model
        tree.reset_counters()
        model.estimate_range(data[0], 1.0)
        model.estimate_knn(data[0], 4)
        assert tree.distance_computations == 0
        assert tree.page_accesses == 0


class TestKnnModel:
    def test_radius_tracks_actual_ndk(self, tree_and_model):
        tree, model, data, _ = tree_and_model
        rng = np.random.default_rng(10)
        ratios = []
        for _ in range(10):
            q = rng.normal(size=4)
            est = model.estimate_knn(q, 8)
            actual_ndk = tree.knn_query(q, 8)[-1][0]
            ratios.append(est.radius / actual_ndk)
        assert 0.6 <= float(np.mean(ratios)) <= 1.5

    def test_radius_grows_with_k(self, tree_and_model):
        _, model, data, _ = tree_and_model
        radii = [model.estimate_knn(data[0], k).radius for k in (1, 8, 64)]
        assert radii == sorted(radii)

    def test_accuracy_band(self, tree_and_model):
        """The paper's headline: accuracy (1-|a-e|/a) averages above ~80%.

        We assert a floor of 50% at this tiny scale, using the paper's
        query protocol (queries drawn from the indexed dataset — the
        protocol the model's probe calibration also assumes).
        """
        tree, model, data, _ = tree_and_model
        accs = []
        for i in range(10):
            q = data[i * 31]
            est = model.estimate_knn(q, 8)
            tree.reset_counters()
            tree.knn_query(q, 8)
            actual = tree.distance_computations
            accs.append(max(0.0, 1 - abs(actual - est.edc) / actual))
        assert float(np.mean(accs)) > 0.5


class TestJoinModel:
    def test_join_edc_matches_actual(self):
        metric = EditDistance()
        set_q = generate_words(150, seed=51)
        set_o = generate_words(150, seed=52)
        pivots = select_pivots(set_o, 3, metric, seed=3)
        d_plus = metric.max_distance(set_q + set_o)
        tq = SPBTree.build(set_q, metric, pivots=pivots, d_plus=d_plus, curve="z")
        to = SPBTree.build(set_o, metric, pivots=pivots, d_plus=d_plus, curve="z")
        for eps in (1, 2, 3):
            est = CostModel.estimate_join(tq, to, eps)
            result = similarity_join(tq, to, eps)
            actual = result.stats.distance_computations
            if actual > 20:
                assert 0.5 <= est.edc / actual <= 2.0, (eps, est.edc, actual)

    def test_join_epa_independent_of_epsilon(self):
        """eq. 8: SJA's I/O is one merge pass — ε does not appear."""
        metric = EditDistance()
        words = generate_words(200, seed=53)
        pivots = select_pivots(words, 3, metric, seed=3)
        d_plus = metric.max_distance(words)
        tq = SPBTree.build(words[:100], metric, pivots=pivots, d_plus=d_plus, curve="z")
        to = SPBTree.build(words[100:], metric, pivots=pivots, d_plus=d_plus, curve="z")
        epa_values = {
            CostModel.estimate_join(tq, to, eps).epa for eps in (1, 2, 4)
        }
        assert len(epa_values) == 1


class TestValidation:
    def test_requires_sample(self):
        metric = EuclideanDistance()
        empty = SPBTree(metric, [np.zeros(2)], 1.0)
        with pytest.raises(ValueError):
            CostModel(empty)

    def test_refresh_after_updates(self, tree_and_model):
        tree, model, data, _ = tree_and_model
        boxes_before = len(model._node_boxes)
        model.refresh()
        assert len(model._node_boxes) == boxes_before


class TestMemberQueries:
    """The paper's workload queries with dataset members; the model's
    member-rank convention must make k=1 (the self-match) nearly free."""

    def test_k1_estimate_close_to_actual(self, tree_and_model):
        tree, model, data, _ = tree_and_model
        accs = []
        for i in range(8):
            q = data[i * 37]
            est = model.estimate_knn(q, 1)
            tree.reset_counters()
            tree.flush_cache()
            tree.knn_query(q, 1)
            actual = tree.distance_computations
            accs.append(max(0.0, 1 - abs(actual - est.edc) / actual))
        import numpy as np

        assert float(np.mean(accs)) > 0.5

    def test_knn_radius_zero_for_k1(self, tree_and_model):
        _, model, data, _ = tree_and_model
        est = model.estimate_knn(data[0], 1)
        assert est.radius < model.estimate_knn(data[0], 8).radius

"""Property-based tests: the B+-tree must behave like a sorted multiset."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.sfc import ZCurve

keys = st.integers(0, 255 * 256 + 255)  # any 2x8-bit Z value


@st.composite
def operations(draw):
    """A bulk load followed by a mixed insert/delete sequence."""
    initial = sorted(
        zip(
            draw(st.lists(keys, max_size=60)),
            range(1000),
        )
    )
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), keys),
            max_size=40,
        )
    )
    return initial, ops


class TestAgainstModel:
    @given(operations())
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_list_model(self, scenario):
        initial, ops = scenario
        tree = BPlusTree(ZCurve(2, 8), page_size=128)
        tree.bulk_load(initial)
        model = list(initial)
        next_ptr = 10_000
        for op, key in ops:
            if op == "insert":
                tree.insert(key, next_ptr)
                model.append((key, next_ptr))
                next_ptr += 1
            else:
                candidates = [p for k, p in model if k == key]
                if candidates:
                    assert tree.delete(key, candidates[0])
                    model.remove((key, candidates[0]))
                else:
                    assert not tree.delete(key, 0)
        model.sort(key=lambda kv: kv[0])
        got = tree.items()
        assert [k for k, _ in got] == [k for k, _ in model]
        assert sorted(got) == sorted(model)

    @given(st.lists(keys, min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_insert_only_construction_equals_bulk_load(self, raw_keys):
        items = sorted((k, i) for i, k in enumerate(raw_keys))
        bulk = BPlusTree(ZCurve(2, 8), page_size=128)
        bulk.bulk_load(items)
        incremental = BPlusTree(ZCurve(2, 8), page_size=128)
        for i, k in enumerate(raw_keys):
            incremental.insert(k, i)
        assert [k for k, _ in incremental.items()] == [k for k, _ in bulk.items()]
        assert sorted(incremental.items()) == sorted(bulk.items())

    @given(st.lists(keys, min_size=1, max_size=80), keys)
    @settings(max_examples=60, deadline=None)
    def test_find_entries_complete(self, raw_keys, probe):
        items = sorted((k, i) for i, k in enumerate(raw_keys))
        tree = BPlusTree(ZCurve(2, 8), page_size=128)
        tree.bulk_load(items)
        expected = sorted(p for k, p in items if k == probe)
        assert sorted(e.ptr for e in tree.find_entries(probe)) == expected

"""End-to-end tests for the network front end (repro.net server+client)."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.spbtree import SPBTree
from repro.distance import EditDistance
from repro.net import (
    NetClient,
    NetError,
    RemoteError,
    RetryLater,
    RetryPolicy,
    protocol,
    serve_in_thread,
)
from repro.service import QueryEngine


@pytest.fixture(scope="module")
def word_tree(small_words):
    return SPBTree.build(small_words, EditDistance(), seed=7), small_words


@pytest.fixture()
def served(word_tree):
    """A started engine + server on an ephemeral port; torn down after."""
    tree, words = word_tree
    engine = QueryEngine(tree, workers=2, max_queue=8).start()
    handle = serve_in_thread(engine, "127.0.0.1", 0)
    try:
        yield handle, engine, tree, words
    finally:
        handle.stop(2.0)
        engine.stop()


class _SlowMetric(EditDistance):
    """Edit distance with a per-call stall (drives deadline degradation)."""

    def __init__(self, stall_s: float = 0.002) -> None:
        super().__init__()
        self.stall_s = stall_s

    def __call__(self, a, b):
        time.sleep(self.stall_s)
        return super().__call__(a, b)


class _GatedMetric(EditDistance):
    """Edit distance that blocks until the gate opens (fills queues)."""

    def __init__(self) -> None:
        super().__init__()
        self.gate = threading.Event()
        self.gate.set()

    def __call__(self, a, b):
        self.gate.wait(30.0)
        return super().__call__(a, b)


class TestEndToEnd:
    def test_knn_matches_local(self, served):
        handle, _, tree, words = served
        with NetClient("127.0.0.1", handle.port) as client:
            result = client.knn_query(words[3], 5)
        assert result.complete
        local = tree.knn_query(words[3], 5)
        assert [d for d, _ in result] == [d for d, _ in local]
        assert sorted(o for _, o in result) == sorted(o for _, o in local)

    def test_range_and_count_match_local(self, served):
        handle, _, tree, words = served
        with NetClient("127.0.0.1", handle.port) as client:
            hits = client.range_query(words[5], 2.0)
            count = client.range_count(words[5], 2.0)
        local = tree.range_query(words[5], 2.0)
        assert sorted(hits) == sorted(local)
        assert count.count == len(local)

    def test_mutations_roundtrip(self, served):
        handle, _, tree, _ = served
        before = tree.object_count
        with NetClient("127.0.0.1", handle.port) as client:
            assert client.insert("zzzznetword") is True
            assert tree.object_count == before + 1
            assert client.delete("zzzznetword") is True
            assert tree.object_count == before
            # Deleting a missing object is an honest False, not an error.
            assert client.delete("zzzznetword") is False

    def test_one_connection_serves_many_requests(self, served):
        handle, _, _, words = served
        with NetClient("127.0.0.1", handle.port) as client:
            for i in range(10):
                assert client.knn_query(words[i], 3).complete

    def test_health_reports_engine_state(self, served):
        handle, engine, tree, words = served
        with NetClient("127.0.0.1", handle.port) as client:
            client.knn_query(words[0], 2)
            health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == engine.workers
        assert health["objects"] == tree.object_count
        assert health["served"] >= 1
        assert health["allowance_ms"] >= 0.0

    def test_metrics_op_returns_exposition(self, served):
        handle, _, _, _ = served
        with NetClient("127.0.0.1", handle.port) as client:
            text = client.metrics()
        assert isinstance(text, str)  # empty when obs is disabled


class TestDeadlinePropagation:
    def test_degraded_answer_arrives_before_client_gives_up(self, small_words):
        tree = SPBTree.build(small_words, _SlowMetric(0.002), seed=7)
        engine = QueryEngine(tree, workers=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        try:
            deadline_ms = 60.0
            true_d = [d for d, _ in tree.knn_query(small_words[3], 10)]
            with NetClient("127.0.0.1", handle.port) as client:
                t0 = time.monotonic()
                result = client.knn_query(
                    small_words[3], 10, deadline_ms=deadline_ms
                )
                elapsed_ms = (time.monotonic() - t0) * 1000.0
            # The slow metric cannot finish 10-NN over 400 words in 60ms,
            # so this must be an honest partial...
            assert not result.complete
            assert result.reason is not None
            assert result.reason.kind == "deadline"
            # ...that arrived around the deadline, not after the client's
            # socket timeout (deadline + grace) — i.e. the server answered
            # rather than letting the client time out.
            assert elapsed_ms < deadline_ms + 250.0
            # Degraded results are honest prefixes of the true answer.
            got = [d for d, _ in result]
            assert got == true_d[: len(got)]
        finally:
            handle.stop(2.0)
            engine.stop()

    def test_pre_tripped_deadline_answered_immediately(self, served):
        handle, _, _, words = served
        # The whole budget fits inside the network allowance: the server
        # must answer an empty honest partial rather than start work.
        with NetClient("127.0.0.1", handle.port) as client:
            result = client.knn_query(words[0], 5, deadline_ms=0.01)
        assert not result.complete
        assert result.reason.kind == "deadline"
        assert list(result) == []

    def test_deadline_survives_the_wire_for_fast_queries(self, served):
        handle, _, tree, words = served
        with NetClient("127.0.0.1", handle.port) as client:
            result = client.knn_query(words[1], 3, deadline_ms=5000.0)
        assert result.complete
        assert [d for d, _ in result] == [
            d for d, _ in tree.knn_query(words[1], 3)
        ]


class TestBackpressure:
    @staticmethod
    def _saturate(engine, words):
        """Deterministically fill the worker + every queue slot with
        gated queries, so the next submit must reject."""
        held = [engine.submit("knn", words[0], 2)]
        deadline = time.monotonic() + 5.0
        # Wait until the (single) worker has dequeued the first query and
        # is blocked inside the metric; the queue is then refillable to
        # exactly max_queue with nothing able to drain it.
        while engine.queue_depth > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert engine.queue_depth == 0, "worker never picked up the plug"
        for _ in range(engine._queue.maxsize):
            held.append(engine.submit("knn", words[0], 2))
        return held

    def test_retry_later_carries_hints(self, small_words):
        metric = _GatedMetric()
        tree = SPBTree.build(small_words, metric, seed=7)
        metric.gate.clear()
        engine = QueryEngine(tree, workers=1, max_queue=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        held = []
        try:
            held = self._saturate(engine, small_words)
            client = NetClient(
                "127.0.0.1", handle.port,
                retry=RetryPolicy(attempts=1),  # no retries: surface it
            )
            with client:
                with pytest.raises(RetryLater) as exc_info:
                    client.knn_query(small_words[1], 2)
            err = exc_info.value
            assert err.code == "RETRY_LATER"
            assert err.queue_depth is not None and err.queue_depth >= 1
            assert err.retry_after_ms is not None and err.retry_after_ms > 0
        finally:
            metric.gate.set()
            for pending in held:
                pending.result(timeout=30)
            handle.stop(2.0)
            engine.stop()

    def test_client_retries_reads_through_backpressure(self, small_words):
        metric = _GatedMetric()
        tree = SPBTree.build(small_words, metric, seed=7)
        metric.gate.clear()
        engine = QueryEngine(tree, workers=1, max_queue=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        held = []
        try:
            held = self._saturate(engine, small_words)
            # Open the gate shortly after the first rejection; the
            # client's backoff schedule must carry it to success.
            opener = threading.Timer(0.15, metric.gate.set)
            opener.start()
            client = NetClient(
                "127.0.0.1", handle.port,
                retry=RetryPolicy(attempts=8, base_delay=0.1, seed=3),
            )
            with client:
                result = client.knn_query(small_words[1], 2)
            assert result.complete
            assert client.retries >= 1
        finally:
            metric.gate.set()
            for pending in held:
                pending.result(timeout=30)
            handle.stop(2.0)
            engine.stop()


class TestRetryDiscipline:
    def _closed_port(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_reads_retry_on_connection_failure(self):
        client = NetClient(
            "127.0.0.1", self._closed_port(),
            connect_timeout=0.2,
            retry=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
        )
        with pytest.raises((NetError, OSError)):
            client.knn_query("word", 2)
        assert client.retries == 2  # attempts - 1 backoff sleeps

    def test_mutations_never_retry(self):
        client = NetClient(
            "127.0.0.1", self._closed_port(),
            connect_timeout=0.2,
            retry=RetryPolicy(attempts=5, base_delay=0.01, seed=1),
        )
        with pytest.raises((NetError, OSError)):
            client.insert("word")
        assert client.retries == 0  # exactly one send attempt

    def test_backoff_schedule_is_seeded_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.05, max_delay=0.2,
                             jitter=0.5, seed=42)
        delays = policy.delays()
        assert delays == RetryPolicy(
            attempts=5, base_delay=0.05, max_delay=0.2, jitter=0.5, seed=42
        ).delays()
        assert len(delays) == 4
        # Jitter only shortens; the cap holds before jitter is applied.
        assert all(0 < d <= 0.2 for d in delays)


class TestHostileWire:
    def test_slow_loris_is_disconnected(self, word_tree):
        tree, _ = word_tree
        engine = QueryEngine(tree, workers=1).start()
        handle = serve_in_thread(
            engine, "127.0.0.1", 0, read_timeout=0.3
        )
        try:
            sock = socket.create_connection(("127.0.0.1", handle.port))
            sock.sendall(b"\x00")  # one byte of prefix, then silence
            sock.settimeout(5.0)
            t0 = time.monotonic()
            assert sock.recv(1024) == b""  # server hung up
            assert time.monotonic() - t0 < 4.0
            sock.close()
        finally:
            handle.stop(1.0)
            engine.stop()

    def test_oversized_length_prefix_refused(self, served):
        handle, _, _, _ = served
        sock = socket.create_connection(("127.0.0.1", handle.port))
        try:
            sock.sendall(protocol._PREFIX.pack(0xFFFFFFF0))
            sock.settimeout(5.0)
            # The server answers once with BAD_REQUEST, then hangs up —
            # it must never try to read (or allocate) the claimed 4 GB.
            prefix = sock.recv(protocol.PREFIX_SIZE)
            (length,) = protocol._PREFIX.unpack(prefix)
            payload = b""
            while len(payload) < length:
                chunk = sock.recv(length - len(payload))
                if not chunk:
                    break
                payload += chunk
            message, _ = protocol.decode_frame(prefix + payload)
            assert message["ok"] is False
            assert message["error"]["code"] == "BAD_REQUEST"
            assert sock.recv(1024) == b""
        finally:
            sock.close()

    def test_garbage_payload_gets_structured_error(self, served):
        handle, _, _, _ = served
        sock = socket.create_connection(("127.0.0.1", handle.port))
        try:
            sock.sendall(protocol._PREFIX.pack(9) + b"not json!")
            sock.settimeout(5.0)
            data = sock.recv(1 << 16)
            message, _ = protocol.decode_frame(data)
            assert message["error"]["code"] == "BAD_REQUEST"
        finally:
            sock.close()

    def test_unknown_op_is_bad_request_but_connection_survives(self, served):
        handle, _, _, words = served
        sock = socket.create_connection(("127.0.0.1", handle.port))
        try:
            sock.sendall(protocol.encode_frame(
                protocol.make_request(1, "knn", {"k": 2}) | {"op": "evil"}
            ))
            sock.settimeout(5.0)
            data = sock.recv(1 << 16)
            message, consumed = protocol.decode_frame(data)
            assert message["error"]["code"] == "BAD_REQUEST"
            # Schema errors are answerable; the connection stays usable.
            sock.sendall(protocol.encode_frame(protocol.make_request(
                2, "knn",
                {"query": protocol.obj_to_json(words[0]), "k": 2},
            )))
            data2 = sock.recv(1 << 16)
            message2, _ = protocol.decode_frame(data2)
            assert message2["ok"] is True
        finally:
            sock.close()


class TestDrain:
    def test_drain_aborts_inflight_to_honest_partials(self, small_words):
        metric = _GatedMetric()
        tree = SPBTree.build(small_words, metric, seed=7)
        metric.gate.clear()
        engine = QueryEngine(tree, workers=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        results = {}

        def query():
            with NetClient("127.0.0.1", handle.port, op_timeout=30.0) as c:
                results["result"] = c.knn_query(small_words[0], 4)

        worker = threading.Thread(target=query)
        try:
            worker.start()
            deadline = time.monotonic() + 5.0
            while not handle.server._inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.server._inflight, "query never reached the server"
            # Cancellation checkpoints live between metric calls, so open
            # the gate as the drain trips tokens: the query then observes
            # cancellation and returns a partial instead of finishing.
            opener = threading.Timer(0.7, metric.gate.set)
            opener.start()
            summary = handle.drain(deadline_s=0.5)
            worker.join(timeout=15.0)
            assert not worker.is_alive()
            assert summary["aborted"] >= 1
            result = results["result"]
            assert not result.complete
            assert result.reason.kind in ("cancelled", "deadline")
        finally:
            metric.gate.set()
            handle.stop(1.0)
            engine.stop()

    def test_draining_server_refuses_new_work(self, word_tree):
        tree, words = word_tree
        engine = QueryEngine(tree, workers=1).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        try:
            client = NetClient("127.0.0.1", handle.port,
                               retry=RetryPolicy(attempts=1))
            with client:
                assert client.knn_query(words[0], 2).complete
                # Flip draining without closing the live connection.
                handle.loop.call_soon_threadsafe(
                    setattr, handle.server, "_draining", True
                )
                time.sleep(0.05)
                with pytest.raises(RemoteError) as exc_info:
                    client.knn_query(words[0], 2)
                assert exc_info.value.code == "SHUTTING_DOWN"
        finally:
            handle.stop(1.0)
            engine.stop()

    def test_stopped_engine_maps_to_structured_code(self, word_tree):
        tree, words = word_tree
        engine = QueryEngine(tree, workers=1).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        try:
            engine.stop()
            client = NetClient("127.0.0.1", handle.port,
                               retry=RetryPolicy(attempts=1))
            with client:
                with pytest.raises(RemoteError) as exc_info:
                    client.knn_query(words[0], 2)
            assert exc_info.value.code == "ENGINE_STOPPED"
        finally:
            handle.stop(1.0)

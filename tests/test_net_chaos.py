"""Wire-level chaos tests: the network front end under a faulty network.

Everything here runs through :class:`repro.net.FaultyTransport`, which
injects delays, dropped frames, truncated frames, corrupted length
prefixes, and connection resets between a real client and a real server.
The invariants under test are the tentpole's safety claims:

* no acknowledged mutation is ever lost, whatever the wire does;
* every degraded kNN payload is a confirmed prefix of the true answer;
* the server outlives misbehaving clients and keeps serving honest
  answers to healthy ones.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.spbtree import SPBTree
from repro.distance import EditDistance
from repro.net import (
    FaultPlan,
    FaultyTransport,
    NetClient,
    NetError,
    ProtocolError,
    RetryPolicy,
    protocol,
    serve_in_thread,
)
from repro.service import QueryEngine


@pytest.fixture()
def served(small_words):
    tree = SPBTree.build(small_words, EditDistance(), seed=7)
    engine = QueryEngine(tree, workers=2, max_queue=16).start()
    handle = serve_in_thread(engine, "127.0.0.1", 0)
    try:
        yield handle, engine, tree, small_words
    finally:
        handle.stop(2.0)
        engine.stop()


def _client_via(proxy, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(attempts=5, base_delay=0.02, seed=11))
    kwargs.setdefault("op_timeout", 2.0)
    return NetClient("127.0.0.1", proxy.port, **kwargs)


class TestForcedFaults:
    """Each fault kind, injected deterministically, survived by retries."""

    def test_delay_is_just_latency(self, served):
        handle, _, tree, words = served
        plan = FaultPlan(delay_s=0.2)
        with FaultyTransport("127.0.0.1", handle.port, plan_s2c=plan) as proxy:
            proxy.force("delay", "s2c")
            with _client_via(proxy) as client:
                t0 = time.monotonic()
                result = client.knn_query(words[0], 3)
                elapsed = time.monotonic() - t0
        assert result.complete
        assert elapsed >= 0.2
        assert proxy.injected["delay"] == 1

    def test_dropped_response_is_retried_to_success(self, served):
        handle, _, _, words = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            proxy.force("drop", "s2c")
            with _client_via(proxy) as client:
                result = client.knn_query(words[1], 3)
                assert result.complete
                assert client.retries >= 1
        assert proxy.injected["drop"] == 1

    def test_truncated_response_is_garbage_then_retried(self, served):
        handle, _, _, words = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            proxy.force("truncate", "s2c")
            with _client_via(proxy) as client:
                result = client.knn_query(words[2], 3)
                assert result.complete
                assert client.retries >= 1
        assert proxy.injected["truncate"] == 1

    def test_corrupt_length_prefix_never_honoured(self, served):
        handle, _, _, words = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            proxy.force("corrupt", "s2c")
            with _client_via(proxy) as client:
                result = client.knn_query(words[3], 3)
                assert result.complete
                assert client.retries >= 1
        assert proxy.injected["corrupt"] == 1

    def test_reset_mid_conversation_is_survived(self, served):
        handle, _, _, words = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            with _client_via(proxy) as client:
                assert client.knn_query(words[4], 3).complete
                proxy.force("reset", "s2c")
                result = client.knn_query(words[4], 3)
                assert result.complete
                assert client.retries >= 1

    def test_request_side_faults_cannot_crash_the_server(self, served):
        from repro.net import RemoteError

        handle, _, _, words = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            for kind in ("drop", "truncate", "corrupt", "reset"):
                proxy.force(kind, "c2s")
                with _client_via(proxy) as client:
                    try:
                        result = client.knn_query(words[5], 3)
                        assert result.complete
                    except RemoteError as exc:
                        # A corrupted *request* is indistinguishable from
                        # a bad client: the server answers BAD_REQUEST,
                        # and the client rightly does not retry it.
                        assert kind == "corrupt"
                        assert exc.code == "BAD_REQUEST"
        # The server is still fully healthy on a clean connection.
        with NetClient("127.0.0.1", handle.port) as direct:
            assert direct.health()["status"] == "ok"


class TestMutationSafety:
    def test_no_acked_mutation_lost_across_resets(self, served):
        """Inserts acked through a resetting wire must all be durable."""
        handle, _, tree, _ = served
        plan = FaultPlan(reset_rate=0.25)
        acked, unacked = [], []
        with FaultyTransport(
            "127.0.0.1", handle.port, seed=5, plan_s2c=plan
        ) as proxy:
            for i in range(40):
                word = f"chaosmut{i:03d}"
                client = _client_via(proxy, retry=RetryPolicy(attempts=1))
                try:
                    with client:
                        assert client.insert(word) is True
                    acked.append(word)
                except (NetError, ProtocolError, OSError):
                    # The wire ate the request or the ack — the client
                    # correctly did NOT blind-resend a mutation.
                    unacked.append(word)
        assert acked, "chaos plan never let an insert through"
        assert unacked, "chaos plan never fired (rates/seed broken?)"
        for word in acked:
            hits = tree.range_query(word, 0)
            assert list(hits) == [word], f"acked insert {word!r} lost"
        # An unacked mutation may have applied (ack lost) or not (request
        # lost) — both are legal; duplicates are not.
        for word in unacked:
            assert len(tree.range_query(word, 0)) <= 1

    def test_mutations_are_never_auto_retried_through_chaos(self, served):
        handle, _, _, _ = served
        with FaultyTransport("127.0.0.1", handle.port) as proxy:
            proxy.force("reset", "s2c")
            client = _client_via(
                proxy, retry=RetryPolicy(attempts=6, base_delay=0.01)
            )
            with client:
                with pytest.raises((NetError, OSError)):
                    client.insert("neverretried")
            assert client.retries == 0


class TestDegradationHonesty:
    def test_degraded_knn_over_chaos_is_confirmed_prefix(self, small_words):
        class SlowEdit(EditDistance):
            def __call__(self, a, b):
                time.sleep(0.001)
                return super().__call__(a, b)

        tree = SPBTree.build(small_words, SlowEdit(), seed=7)
        engine = QueryEngine(tree, workers=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        true_d = [d for d, _ in tree.knn_query(small_words[3], 10)]
        plan = FaultPlan(delay_rate=0.2, delay_s=0.02)
        saw_partial = False
        try:
            with FaultyTransport(
                "127.0.0.1", handle.port, seed=9, plan_s2c=plan
            ) as proxy:
                with _client_via(proxy, op_timeout=10.0) as client:
                    for deadline_ms in (30.0, 60.0, 120.0, 5000.0):
                        result = client.knn_query(
                            small_words[3], 10, deadline_ms=deadline_ms
                        )
                        got = [d for d, _ in result]
                        if not result.complete:
                            saw_partial = True
                            assert result.reason is not None
                        # Complete or degraded: always a prefix of truth.
                        assert got == true_d[: len(got)]
            assert saw_partial
        finally:
            handle.stop(2.0)
            engine.stop()


class TestMisbehavingClients:
    def test_server_survives_a_crowd_of_hostile_clients(self, small_words):
        tree = SPBTree.build(small_words, EditDistance(), seed=7)
        engine = QueryEngine(tree, workers=2, max_queue=16).start()
        handle = serve_in_thread(
            engine, "127.0.0.1", 0, read_timeout=0.5
        )
        stop = threading.Event()
        misbehaviours = []

        def hostile(style: int) -> None:
            while not stop.is_set():
                try:
                    sock = socket.create_connection(
                        ("127.0.0.1", handle.port), timeout=1.0
                    )
                    sock.settimeout(1.0)
                    if style == 0:  # corrupt prefix
                        sock.sendall(protocol._PREFIX.pack(0xFFFFFFF0))
                    elif style == 1:  # half a frame, then hang (loris)
                        sock.sendall(b"\x00\x00")
                        time.sleep(0.3)
                    elif style == 2:  # garbage payload
                        sock.sendall(protocol._PREFIX.pack(5) + b"ha")
                        time.sleep(0.1)
                    else:  # connect and slam
                        pass
                    sock.close()
                except OSError:
                    pass

        threads = [
            threading.Thread(target=hostile, args=(i % 4,), daemon=True)
            for i in range(6)
        ]
        try:
            for t in threads:
                t.start()
            # A healthy client keeps getting correct, complete answers
            # the whole time the crowd is abusing the listener.
            with NetClient(
                "127.0.0.1", handle.port,
                retry=RetryPolicy(attempts=4, base_delay=0.05, seed=2),
            ) as client:
                expected = [
                    d for d, _ in tree.knn_query(small_words[7], 4)
                ]
                for _ in range(15):
                    result = client.knn_query(small_words[7], 4)
                    assert result.complete
                    assert [d for d, _ in result] == expected
                health = client.health()
            assert health["status"] == "ok"
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
            handle.stop(2.0)
            engine.stop()
        assert not misbehaviours


class TestSeededChaosRun:
    def test_mixed_fault_soak_stays_honest(self, served):
        """A seeded all-faults soak: every answer that comes back is
        either complete-and-correct or an honest partial; the server's
        tallies stay coherent."""
        handle, engine, tree, words = served
        plan = FaultPlan(
            delay_rate=0.05, delay_s=0.01, drop_rate=0.05,
            truncate_rate=0.05, corrupt_rate=0.05, reset_rate=0.05,
        )
        completed = failed = 0
        with FaultyTransport(
            "127.0.0.1", handle.port, seed=1234,
            plan_c2s=plan, plan_s2c=plan,
        ) as proxy:
            for i in range(30):
                q = words[i % len(words)]
                expected = [d for d, _ in tree.knn_query(q, 3)]
                client = _client_via(
                    proxy,
                    retry=RetryPolicy(attempts=4, base_delay=0.02, seed=i),
                    op_timeout=1.0,
                )
                try:
                    with client:
                        result = client.knn_query(q, 3)
                except (NetError, ProtocolError, OSError):
                    failed += 1
                    continue
                completed += 1
                got = [d for d, _ in result]
                if result.complete:
                    assert got == expected
                else:
                    assert got == expected[: len(got)]
            assert completed >= 15, (
                f"chaos ate too much: {completed} completed, {failed} failed, "
                f"injected={proxy.injected}"
            )
            assert sum(proxy.injected.values()) > 0
        # Engine bookkeeping survived: served everything it admitted.
        assert engine.failed == 0
        with NetClient("127.0.0.1", handle.port) as direct:
            assert direct.health()["status"] == "ok"


class TestBenchSmoke:
    def test_run_load_produces_a_coherent_record(self, served):
        from repro.net.bench import percentile, run_load

        handle, _, _, words = served
        record = run_load(
            "127.0.0.1", handle.port, words[:10],
            clients=2, qps=40.0, duration_s=1.0,
            deadline_ms=500.0, k=3, radius=2.0, seed=0,
        )
        assert record["completed"] > 0
        assert record["errors"] == 0
        lat = record["latency_ms"]
        assert 0 < lat["p50"] <= lat["p90"] <= lat["p95"] <= lat["p99"]
        assert record["qps_achieved"] > 0

    def test_percentile_interpolates(self):
        from repro.net.bench import percentile

        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.9) == 7.0

    def test_append_series_accumulates(self, tmp_path):
        from repro.net.bench import append_series

        path = str(tmp_path / "BENCH_net.json")
        append_series(path, {"completed": 1}, meta={"mode": "test"})
        doc = append_series(path, {"completed": 2})
        assert len(doc["series"]) == 2
        assert doc["series"][0]["mode"] == "test"
        assert all("ts" in entry for entry in doc["series"])

"""Correctness tests for the join baselines: Quickjoin and eD-index."""

import numpy as np
import pytest

from repro.baselines import EDIndex, quickjoin
from repro.datasets import generate_color, generate_words
from repro.distance import EditDistance, EuclideanDistance, MinkowskiDistance


def brute_force(left, right, metric, eps):
    return sum(1 for a in left for b in right if metric(a, b) <= eps)


@pytest.fixture(scope="module")
def vector_sets():
    rng = np.random.default_rng(19)
    metric = EuclideanDistance()
    left = [rng.normal(size=4) for _ in range(120)]
    right = [rng.normal(size=4) for _ in range(150)]
    return left, right, metric


@pytest.fixture(scope="module")
def word_sets():
    return generate_words(120, seed=61), generate_words(130, seed=62), EditDistance()


class TestQuickjoin:
    @pytest.mark.parametrize("eps", [0.0, 0.4, 1.0, 2.0])
    def test_vectors_match_brute_force(self, vector_sets, eps):
        left, right, metric = vector_sets
        result = quickjoin(left, right, metric, eps, seed=3)
        assert len(result.pairs) == brute_force(left, right, metric, eps)

    @pytest.mark.parametrize("eps", [0, 1, 3])
    def test_words_match_brute_force(self, word_sets, eps):
        left, right, metric = word_sets
        result = quickjoin(left, right, metric, eps, seed=3)
        assert len(result.pairs) == brute_force(left, right, metric, eps)

    def test_pairs_oriented_left_right(self, word_sets):
        left, right, metric = word_sets
        left_set = set(left)
        result = quickjoin(left, right, metric, 2, seed=3)
        for a, b in result.pairs:
            assert a in left_set

    def test_no_duplicates(self, word_sets):
        left, right, metric = word_sets
        result = quickjoin(left, right, metric, 2, seed=3)
        assert len(set(result.pairs)) == len(result.pairs)

    def test_beats_nested_loop_compdists(self, vector_sets):
        left, right, metric = vector_sets
        result = quickjoin(left, right, metric, 0.3, seed=3)
        assert result.stats.distance_computations < len(left) * len(right)

    def test_no_page_accesses(self, vector_sets):
        left, right, metric = vector_sets
        result = quickjoin(left, right, metric, 0.5, seed=3)
        assert result.stats.page_accesses == 0

    def test_rejects_negative_epsilon(self, vector_sets):
        left, right, metric = vector_sets
        with pytest.raises(ValueError):
            quickjoin(left, right, metric, -1.0)

    def test_deterministic_given_seed(self, word_sets):
        left, right, metric = word_sets
        a = quickjoin(left, right, metric, 1, seed=5)
        b = quickjoin(left, right, metric, 1, seed=5)
        assert a.pairs == b.pairs


class TestEDIndex:
    @pytest.mark.parametrize("eps", [0.3, 0.8])
    def test_vectors_match_brute_force(self, vector_sets, eps):
        left, right, metric = vector_sets
        index = EDIndex.build(left, right, metric, eps, seed=3)
        result = index.join(eps)
        assert len(result.pairs) == brute_force(left, right, metric, eps)

    @pytest.mark.parametrize("eps", [1, 2])
    def test_words_match_brute_force(self, word_sets, eps):
        left, right, metric = word_sets
        index = EDIndex.build(left, right, metric, eps, seed=3)
        result = index.join(eps)
        assert len(result.pairs) == brute_force(left, right, metric, eps)

    def test_smaller_epsilon_than_build_allowed(self, word_sets):
        left, right, metric = word_sets
        index = EDIndex.build(left, right, metric, 3, seed=3)
        result = index.join(1)
        assert len(result.pairs) == brute_force(left, right, metric, 1)

    def test_larger_epsilon_rejected(self, word_sets):
        """The paper: 'the index has to be rebuilt for larger ε values'."""
        left, right, metric = word_sets
        index = EDIndex.build(left, right, metric, 1, seed=3)
        with pytest.raises(ValueError, match="rebuild"):
            index.join(5)

    def test_replication_inflates_storage(self):
        """ε-enlargement replicates objects: storage exceeds the raw data."""
        data = generate_color(300, seed=3)
        metric = MinkowskiDistance(5)
        d_plus = metric.max_distance(data)
        index = EDIndex.build(
            data[:150], data[150:], metric, d_plus * 0.1, seed=3
        )
        raw_bytes = sum(16 * 8 for _ in data)
        assert index.size_in_bytes > raw_bytes

    def test_join_counts_page_accesses(self, word_sets):
        left, right, metric = word_sets
        index = EDIndex.build(left, right, metric, 2, seed=3)
        result = index.join(2)
        assert result.stats.page_accesses > 0

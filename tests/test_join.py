"""Tests for the SJA similarity join (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.join import similarity_join
from repro.core.pivots import select_pivots
from repro.core.spbtree import SPBTree
from repro.datasets import generate_words
from repro.distance import EditDistance, EuclideanDistance


def build_pair(set_q, set_o, metric, num_pivots=3, delta=None):
    pivots = select_pivots(set_o, num_pivots, metric, seed=3)
    d_plus = metric.max_distance(list(set_q) + list(set_o))
    tree_q = SPBTree.build(
        set_q, metric, pivots=pivots, d_plus=d_plus, curve="z", delta=delta
    )
    tree_o = SPBTree.build(
        set_o, metric, pivots=pivots, d_plus=d_plus, curve="z", delta=delta
    )
    return tree_q, tree_o


def brute_force(set_q, set_o, metric, eps):
    return sum(1 for a in set_q for b in set_o if metric(a, b) <= eps)


class TestVectors:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(11)
        metric = EuclideanDistance()
        set_q = [rng.normal(size=4) for _ in range(150)]
        set_o = [rng.normal(size=4) for _ in range(200)]
        trees = build_pair(set_q, set_o, metric)
        return set_q, set_o, metric, trees

    @pytest.mark.parametrize("eps", [0.0, 0.3, 0.8, 1.5])
    def test_matches_brute_force(self, setup, eps):
        set_q, set_o, metric, (tree_q, tree_o) = setup
        result = similarity_join(tree_q, tree_o, eps)
        assert len(result.pairs) == brute_force(set_q, set_o, metric, eps)

    def test_no_duplicate_pairs(self, setup):
        """Lemma 7: no missing and no duplicated answer pairs."""
        set_q, set_o, metric, (tree_q, tree_o) = setup
        result = similarity_join(tree_q, tree_o, 1.0)
        keys = {(a.tobytes(), b.tobytes()) for a, b in result.pairs}
        assert len(keys) == len(result.pairs)

    def test_pairs_ordered_q_then_o(self, setup):
        set_q, set_o, metric, (tree_q, tree_o) = setup
        q_keys = {a.tobytes() for a in set_q}
        result = similarity_join(tree_q, tree_o, 0.8)
        for a, b in result.pairs:
            assert a.tobytes() in q_keys

    def test_saves_distance_computations(self, setup):
        set_q, set_o, metric, (tree_q, tree_o) = setup
        result = similarity_join(tree_q, tree_o, 0.5)
        assert result.stats.distance_computations < len(set_q) * len(set_o)

    def test_negative_epsilon_rejected(self, setup):
        _, _, _, (tree_q, tree_o) = setup
        with pytest.raises(ValueError):
            similarity_join(tree_q, tree_o, -0.1)


class TestWords:
    def test_paper_example(self):
        """§5.1: SJ(Q, O, 1) = {<defoliate, defoliated>}."""
        metric = EditDistance()
        set_q = ["defoliate", "defoliates", "defoliation"] + [
            f"filler{i:03d}" for i in range(60)
        ]
        set_o = ["citrate", "defoliated", "defoliating"] + [
            f"pad{i:04d}xx" for i in range(60)
        ]
        tree_q, tree_o = build_pair(set_q, set_o, metric, num_pivots=2)
        result = similarity_join(tree_q, tree_o, 1)
        assert ("defoliate", "defoliated") in result.pairs
        assert len(result.pairs) == brute_force(set_q, set_o, metric, 1)

    @pytest.mark.parametrize("eps", [0, 1, 2, 4])
    def test_matches_brute_force(self, eps):
        metric = EditDistance()
        set_q = generate_words(120, seed=21)
        set_o = generate_words(150, seed=22)
        tree_q, tree_o = build_pair(set_q, set_o, metric)
        result = similarity_join(tree_q, tree_o, eps)
        assert len(result.pairs) == brute_force(set_q, set_o, metric, eps)


class TestValidation:
    def test_requires_z_curve(self):
        metric = EditDistance()
        words = generate_words(80, seed=5)
        pivots = select_pivots(words, 2, metric, seed=3)
        d_plus = metric.max_distance(words)
        hilbert = SPBTree.build(
            words, metric, pivots=pivots, d_plus=d_plus, curve="hilbert"
        )
        zorder = SPBTree.build(
            words, metric, pivots=pivots, d_plus=d_plus, curve="z"
        )
        with pytest.raises(ValueError, match="Z-order"):
            similarity_join(hilbert, zorder, 1)

    def test_requires_shared_pivots(self):
        metric = EditDistance()
        words_a = generate_words(80, seed=5)
        words_b = generate_words(80, seed=6)
        tree_a = SPBTree.build(words_a, metric, num_pivots=2, curve="z", seed=1)
        tree_b = SPBTree.build(words_b, metric, num_pivots=2, curve="z", seed=2)
        with pytest.raises(ValueError):
            similarity_join(tree_a, tree_b, 1)

    def test_symmetry_of_pair_count(self):
        metric = EditDistance()
        set_q = generate_words(100, seed=31)
        set_o = generate_words(100, seed=32)
        tq, to = build_pair(set_q, set_o, metric)
        forward = similarity_join(tq, to, 2)
        backward = similarity_join(to, tq, 2)
        assert len(forward.pairs) == len(backward.pairs)


class TestDeletedObjects:
    def test_join_skips_deleted(self):
        metric = EditDistance()
        set_q = generate_words(100, seed=41)
        set_o = generate_words(100, seed=42)
        tq, to = build_pair(set_q, set_o, metric)
        full = len(similarity_join(tq, to, 2).pairs)
        # Delete a word that participates in at least one pair.
        participating = {a for a, _ in similarity_join(tq, to, 2).pairs}
        if participating:
            victim = next(iter(participating))
            assert tq.delete(victim)
            reduced = len(similarity_join(tq, to, 2).pairs)
            assert reduced < full

"""Tests for the shared counters."""

import pytest

from repro.stats import (
    AveragedStats,
    PageAccessCounter,
    QueryStats,
    StatsSession,
    pop_stat_shard,
    push_stat_shard,
    shard_depth,
    trim_stat_shards,
)


class TestPageAccessCounter:
    def test_total_and_reset(self):
        c = PageAccessCounter()
        c.reads += 3
        c.writes += 2
        assert c.total == 5
        c.reset()
        assert c.total == 0


class TestQueryStats:
    def test_add(self):
        a = QueryStats(10, 20, 1.0, 5)
        b = QueryStats(1, 2, 0.5, 1)
        a.add(b)
        assert (a.page_accesses, a.distance_computations) == (11, 22)
        assert a.elapsed_seconds == pytest.approx(1.5)
        assert a.result_size == 6

    def test_averaged(self):
        s = QueryStats(10, 20, 2.0, 4)
        avg = s.averaged(4)
        assert isinstance(avg, AveragedStats)
        assert avg.page_accesses == 2.5
        assert avg.distance_computations == 5
        assert avg.elapsed_seconds == 0.5

    def test_averaged_fields_are_floats(self):
        avg = QueryStats(10, 20, 2.0, 4).averaged(2)
        for value in (
            avg.page_accesses,
            avg.distance_computations,
            avg.elapsed_seconds,
            avg.result_size,
        ):
            assert isinstance(value, float)

    def test_averaged_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            QueryStats().averaged(0)


class TestStatShardStack:
    def test_unbalanced_pop_names_the_thread(self):
        with pytest.raises(RuntimeError, match="MainThread"):
            pop_stat_shard()

    def test_trim_recovers_leaked_shards(self):
        base = shard_depth()
        push_stat_shard(QueryStats())
        push_stat_shard(QueryStats())
        assert shard_depth() == base + 2
        assert trim_stat_shards(base) == 2
        assert shard_depth() == base


class TestStatsSession:
    def test_measures_deltas(self):
        class FakeIndex:
            page_accesses = 0
            distance_computations = 0

        idx = FakeIndex()
        with StatsSession(idx) as session:
            idx.page_accesses = 7
            idx.distance_computations = 13
        assert session.stats.page_accesses == 7
        assert session.stats.distance_computations == 13
        assert session.stats.elapsed_seconds >= 0

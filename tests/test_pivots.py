"""Unit tests for the pivot selection algorithms."""

import random

import pytest

from repro.core.pivots import (
    intrinsic_dimensionality,
    pivot_set_precision,
    select_fft,
    select_hf,
    select_hfi,
    select_pca,
    select_pivots,
    select_random,
    select_spacing,
    select_sss,
)

ALL_METHODS = ["random", "fft", "hf", "sss", "spacing", "pca", "hfi"]


@pytest.mark.parametrize("method", ALL_METHODS)
class TestAllMethods:
    def test_returns_requested_count(self, method, small_vectors, l2):
        pivots = select_pivots(small_vectors, 4, l2, method=method, seed=3)
        assert len(pivots) == 4

    def test_pivots_come_from_dataset(self, method, small_vectors, l2):
        pivots = select_pivots(small_vectors, 3, l2, method=method, seed=3)
        ids = {id(o) for o in small_vectors}
        for p in pivots:
            assert id(p) in ids

    def test_deterministic(self, method, small_words, edit):
        a = select_pivots(small_words, 3, edit, method=method, seed=5)
        b = select_pivots(small_words, 3, edit, method=method, seed=5)
        assert a == b

    def test_distinct_pivots(self, method, small_vectors, l2):
        pivots = select_pivots(small_vectors, 5, l2, method=method, seed=3)
        assert len({id(p) for p in pivots}) == len(pivots)


class TestDispatch:
    def test_unknown_method(self, small_vectors, l2):
        with pytest.raises(ValueError, match="unknown pivot selection"):
            select_pivots(small_vectors, 3, l2, method="nope")

    def test_invalid_k(self, small_vectors, l2):
        with pytest.raises(ValueError):
            select_pivots(small_vectors, 0, l2)


class TestPrecision:
    def test_precision_in_unit_interval(self, small_vectors, l2):
        rng = random.Random(0)
        pairs = [
            (rng.choice(small_vectors), rng.choice(small_vectors))
            for _ in range(100)
        ]
        pivots = select_hf(small_vectors, 3, l2, seed=1)
        precision = pivot_set_precision(pivots, pairs, l2)
        assert 0.0 <= precision <= 1.0

    def test_more_pivots_never_hurt(self, small_vectors, l2):
        """Definition 1: adding a pivot can only raise D, hence precision."""
        rng = random.Random(0)
        pairs = [
            (rng.choice(small_vectors), rng.choice(small_vectors))
            for _ in range(80)
        ]
        pivots = select_hf(small_vectors, 6, l2, seed=1)
        p2 = pivot_set_precision(pivots[:2], pairs, l2)
        p4 = pivot_set_precision(pivots[:4], pairs, l2)
        p6 = pivot_set_precision(pivots, pairs, l2)
        assert p2 <= p4 + 1e-9
        assert p4 <= p6 + 1e-9

    def test_hfi_beats_random_on_average(self, small_vectors, l2):
        rng = random.Random(42)
        pairs = [
            (rng.choice(small_vectors), rng.choice(small_vectors))
            for _ in range(120)
        ]
        hfi = select_hfi(small_vectors, 4, l2, seed=1)
        rnd = select_random(small_vectors, 4, seed=1)
        assert pivot_set_precision(hfi, pairs, l2) >= pivot_set_precision(
            rnd, pairs, l2
        ) - 0.02


class TestHF:
    def test_first_two_pivots_are_far_apart(self, small_vectors, l2):
        pivots = select_hf(small_vectors, 2, l2, seed=1)
        d12 = l2(pivots[0], pivots[1])
        rng = random.Random(0)
        sample = [
            l2(rng.choice(small_vectors), rng.choice(small_vectors))
            for _ in range(200)
        ]
        mean = sum(sample) / len(sample)
        assert d12 > mean  # hull endpoints are farther than average


class TestSSS:
    def test_pivots_respect_separation(self, small_vectors, l2):
        d_plus = l2.max_distance(small_vectors[:100])
        pivots = select_sss(
            small_vectors, 3, l2, seed=1, d_plus=d_plus, alpha=0.3
        )
        assert len(pivots) == 3


class TestIntrinsicDimensionality:
    def test_positive(self, small_vectors, l2):
        rho = intrinsic_dimensionality(small_vectors, l2, num_pairs=400)
        assert rho > 0

    def test_higher_for_uniform_than_clustered(self, l2):
        import numpy as np

        rng = np.random.default_rng(0)
        uniform = [rng.uniform(size=8) for _ in range(200)]
        clustered = [
            np.zeros(8) + rng.normal(scale=0.01, size=8) for _ in range(100)
        ] + [np.ones(8) + rng.normal(scale=0.01, size=8) for _ in range(100)]
        rho_u = intrinsic_dimensionality(uniform, l2, num_pairs=500)
        rho_c = intrinsic_dimensionality(clustered, l2, num_pairs=500)
        assert rho_u > rho_c

    def test_trivial_inputs(self, l2):
        import numpy as np

        assert intrinsic_dimensionality([np.zeros(2)], l2) == 1.0


class TestFFT:
    def test_spreads_pivots(self, small_vectors, l2):
        pivots = select_fft(small_vectors, 4, l2, seed=1)
        # Every pair of FFT pivots should be reasonably separated.
        for i, a in enumerate(pivots):
            for b in pivots[i + 1 :]:
                assert l2(a, b) > 0

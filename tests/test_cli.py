"""Smoke tests for the demo CLI (python -m repro.cli)."""

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.slow
class TestCli:
    def test_info(self):
        result = run_cli("info", "--dataset", "words", "--size", "300")
        assert result.returncode == 0, result.stderr
        assert "intrinsic dim" in result.stdout

    def test_range(self):
        result = run_cli(
            "range", "--dataset", "words", "--size", "300",
            "--query", "defoliate", "--radius", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "RQ(q, O, 2)" in result.stdout
        assert "actual" in result.stdout

    def test_knn(self):
        result = run_cli(
            "knn", "--dataset", "color", "--size", "300", "--k", "4"
        )
        assert result.returncode == 0, result.stderr
        assert "kNN(q, 4)" in result.stdout

    def test_join(self):
        result = run_cli(
            "join", "--dataset", "words", "--size", "300",
            "--epsilon-percent", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "pairs" in result.stdout

    def test_compare(self):
        result = run_cli(
            "compare", "--dataset", "color", "--size", "300", "--k", "4"
        )
        assert result.returncode == 0, result.stderr
        for method in ("SPB-tree", "M-tree", "OmniR-tree", "M-Index"):
            assert method in result.stdout

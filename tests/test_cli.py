"""Smoke tests for the demo CLI (python -m repro.cli)."""

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.slow
class TestCli:
    def test_info(self):
        result = run_cli("info", "--dataset", "words", "--size", "300")
        assert result.returncode == 0, result.stderr
        assert "intrinsic dim" in result.stdout

    def test_range(self):
        result = run_cli(
            "range", "--dataset", "words", "--size", "300",
            "--query", "defoliate", "--radius", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "RQ(q, O, 2)" in result.stdout
        assert "actual" in result.stdout

    def test_knn(self):
        result = run_cli(
            "knn", "--dataset", "color", "--size", "300", "--k", "4"
        )
        assert result.returncode == 0, result.stderr
        assert "kNN(q, 4)" in result.stdout

    def test_join(self):
        result = run_cli(
            "join", "--dataset", "words", "--size", "300",
            "--epsilon-percent", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "pairs" in result.stdout

    def test_compare(self):
        result = run_cli(
            "compare", "--dataset", "color", "--size", "300", "--k", "4"
        )
        assert result.returncode == 0, result.stderr
        for method in ("SPB-tree", "M-tree", "OmniR-tree", "M-Index"):
            assert method in result.stdout

    def test_query_complete(self):
        result = run_cli(
            "query", "--dataset", "words", "--size", "300",
            "--mode", "knn", "--k", "3",
        )
        assert result.returncode == 0, result.stderr
        assert "kNN(q, 3)" in result.stdout
        assert "status    : complete" in result.stdout
        assert "spent" in result.stdout

    def test_query_partial_on_budget(self):
        result = run_cli(
            "query", "--dataset", "words", "--size", "300",
            "--mode", "knn", "--k", "8", "--max-compdists", "10",
        )
        assert result.returncode == 0, result.stderr
        assert "PARTIAL" in result.stdout
        assert "compdists budget exceeded" in result.stdout

    def test_query_strict_exits_nonzero(self):
        result = run_cli(
            "query", "--dataset", "words", "--size", "300",
            "--mode", "range", "--radius", "3",
            "--max-compdists", "10", "--strict",
        )
        assert result.returncode == 1
        assert "query aborted (strict)" in result.stderr

    def test_serve(self):
        result = run_cli(
            "serve", "--dataset", "words", "--size", "300",
            "--num-queries", "9", "--workers", "2", "--queue-size", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "served 9 operations" in result.stdout
        assert "failures  : 0" in result.stdout

    def test_serve_with_mutations(self):
        result = run_cli(
            "serve", "--dataset", "words", "--size", "300",
            "--num-queries", "6", "--mutations", "4", "--workers", "2",
            "--queue-size", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "served 10 operations" in result.stdout
        assert "mutations : 4" in result.stdout
        assert "failures  : 0" in result.stdout


@pytest.mark.slow
class TestCliVerifySalvage:
    """Satellite: verify/salvage must exit non-zero with a one-line
    stderr summary when the index is damaged."""

    def _build_index(self, tmp_path):
        out = str(tmp_path / "idx")
        result = run_cli(
            "build", "--dataset", "words", "--size", "300", "--out", out
        )
        assert result.returncode == 0, result.stderr
        return out

    def test_verify_ok(self, tmp_path):
        out = self._build_index(tmp_path)
        result = run_cli("verify", "--dir", out)
        assert result.returncode == 0, result.stderr
        summary = [line for line in result.stderr.splitlines() if line]
        assert len(summary) == 1
        assert summary[0].startswith("verify: OK — ")
        assert "buffer hit-rate" in summary[0]

    def test_verify_detects_corruption(self, tmp_path):
        out = self._build_index(tmp_path)
        raf = tmp_path / "idx" / "raf.1.pages"
        data = bytearray(raf.read_bytes())
        data[600] ^= 0xFF  # one flipped byte in a stored object page
        raf.write_bytes(bytes(data))
        result = run_cli("verify", "--dir", out)
        assert result.returncode == 1
        summary = [line for line in result.stderr.splitlines() if line]
        assert len(summary) == 1
        assert summary[0].startswith("verify: FAILED — ")

    def test_salvage_failure_is_one_stderr_line(self, tmp_path):
        missing = str(tmp_path / "nope")
        result = run_cli("salvage", "--dir", missing, "--metric", "edit")
        assert result.returncode == 1
        summary = [line for line in result.stderr.splitlines() if line]
        assert len(summary) == 1
        assert summary[0].startswith("salvage: FAILED — ")


@pytest.mark.slow
class TestCliIncrementalWrites:
    """The write-path subcommands: insert, delete, log-stats, checkpoint."""

    def test_insert_delete_checkpoint_cycle(self, tmp_path):
        d = str(tmp_path / "idx")
        result = run_cli(
            "build", "--dataset", "words", "--size", "200", "--out", d
        )
        assert result.returncode == 0, result.stderr

        result = run_cli("insert", "--dir", d, "--object", "zzyzx")
        assert result.returncode == 0, result.stderr
        assert "inserted 'zzyzx'" in result.stdout
        assert "201 objects" in result.stdout

        result = run_cli("log-stats", "--dir", d)
        assert result.returncode == 0, result.stderr
        assert "1 inserts, 0 deletes" in result.stdout
        assert "generation 1" in result.stdout

        result = run_cli("delete", "--dir", d, "--object", "zzyzx")
        assert result.returncode == 0, result.stderr
        assert "200 objects" in result.stdout

        result = run_cli("checkpoint", "--dir", d)
        assert result.returncode == 0, result.stderr
        assert "folded 2 WAL records into generation 2" in result.stdout

        result = run_cli("log-stats", "--dir", d)
        assert "0 inserts, 0 deletes" in result.stdout
        assert "generation 2" in result.stdout

        # The folded index still audits clean.
        result = run_cli("verify", "--dir", d)
        assert result.returncode == 0, result.stderr

    def test_delete_missing_object_exits_nonzero(self, tmp_path):
        d = str(tmp_path / "idx")
        assert run_cli(
            "build", "--dataset", "words", "--size", "120", "--out", d
        ).returncode == 0
        result = run_cli("delete", "--dir", d, "--object", "nonexistentword")
        assert result.returncode == 1
        assert "not found" in result.stderr

    def test_log_stats_without_wal(self, tmp_path):
        d = str(tmp_path / "idx")
        assert run_cli(
            "build", "--dataset", "words", "--size", "120", "--out", d
        ).returncode == 0
        result = run_cli("log-stats", "--dir", d)
        assert result.returncode == 0, result.stderr
        assert "no write-ahead log" in result.stdout

"""Correctness tests for the classic-tree baselines: BK-tree, GHT, PM-tree."""

import numpy as np
import pytest

from repro.baselines import BKTree, GHTree, LinearScan, MTree, PMTree
from repro.datasets import generate_signature, generate_words
from repro.distance import EditDistance, EuclideanDistance, HammingDistance


@pytest.fixture(scope="module")
def words():
    data = generate_words(300, seed=17)
    metric = EditDistance()
    return data, metric, LinearScan(data, metric)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(7)
    centers = rng.normal(size=(4, 4))
    data = [centers[i % 4] + rng.normal(scale=0.4, size=4) for i in range(350)]
    metric = EuclideanDistance()
    return data, metric, LinearScan(data, metric)


class TestBKTree:
    def test_range_matches_oracle(self, words):
        data, metric, oracle = words
        tree = BKTree(data, metric)
        for q in data[:4]:
            for r in (0, 1, 3):
                assert sorted(tree.range_query(q, r)) == sorted(
                    oracle.range_query(q, r)
                )

    def test_knn_matches_oracle(self, words):
        data, metric, oracle = words
        tree = BKTree(data, metric)
        for q in data[:4]:
            got = tree.knn_query(q, 6)
            expected = oracle.knn_query(q, 6)
            assert [d for d, _ in got] == [d for d, _ in expected]

    def test_hamming_signatures(self):
        data = [tuple(int(v) for v in s) for s in generate_signature(150, seed=3)]
        metric = HammingDistance()
        tree = BKTree(data, metric)
        oracle = LinearScan(data, metric)
        q = data[0]
        for r in (2, 8):
            assert len(tree.range_query(q, r)) == len(oracle.range_query(q, r))

    def test_rejects_continuous_metric(self, vectors):
        data, metric, _ = vectors
        with pytest.raises(ValueError, match="discrete"):
            BKTree(data, metric)

    def test_prunes_versus_linear(self, words):
        data, metric, oracle = words
        tree = BKTree(data, metric)
        tree.reset_counters()
        oracle.distance.reset()
        tree.range_query(data[0], 1)
        oracle.range_query(data[0], 1)
        assert tree.distance_computations < oracle.distance_computations


class TestGHTree:
    @pytest.mark.parametrize("fixture", ["words", "vectors"])
    def test_range_matches_oracle(self, fixture, request):
        data, metric, oracle = request.getfixturevalue(fixture)
        tree = GHTree(data, metric, seed=7)
        q = data[0]
        radii = (1, 3) if metric.is_discrete else (0.5, 1.5)
        for r in radii:
            got = tree.range_query(q, r)
            expected = oracle.range_query(q, r)
            assert len(got) == len(expected)

    def test_knn_matches_oracle(self, words):
        data, metric, oracle = words
        tree = GHTree(data, metric, seed=7)
        for q in data[:4]:
            got = tree.knn_query(q, 6)
            expected = oracle.knn_query(q, 6)
            assert [d for d, _ in got] == [d for d, _ in expected]


class TestPMTree:
    @pytest.mark.parametrize("fixture", ["words", "vectors"])
    def test_range_matches_oracle(self, fixture, request):
        data, metric, oracle = request.getfixturevalue(fixture)
        tree = PMTree.build(data, metric, seed=7)
        q = data[0]
        radii = (1, 2, 4) if metric.is_discrete else (0.5, 1.5, 3.0)
        for r in radii:
            got = tree.range_query(q, r)
            expected = oracle.range_query(q, r)
            assert len(got) == len(expected)

    def test_knn_matches_oracle(self, vectors):
        data, metric, oracle = vectors
        tree = PMTree.build(data, metric, seed=7)
        rng = np.random.default_rng(2)
        for _ in range(4):
            q = rng.normal(size=4)
            got = tree.knn_query(q, 8)
            expected = oracle.knn_query(q, 8)
            assert [d for d, _ in got] == pytest.approx(
                [d for d, _ in expected]
            )

    def test_rings_beat_plain_mtree(self, vectors):
        """The hybrid's selling point: strictly fewer distance
        computations than the plain M-tree on the same workload."""
        data, metric, _ = vectors
        pm = PMTree.build(data, metric, seed=7)
        mt = MTree.build(data, metric, seed=7)
        pm.reset_counters()
        mt.reset_counters()
        for q in data[:10]:
            pm.range_query(q, 0.8)
            mt.range_query(q, 0.8)
        assert pm.distance_computations < mt.distance_computations

    def test_rings_cost_storage(self, vectors):
        """...and its price: a bigger index than the plain M-tree."""
        data, metric, _ = vectors
        pm = PMTree.build(data, metric, num_pivots=8, seed=7)
        mt = MTree.build(data, metric, seed=7)
        assert pm.size_in_bytes >= mt.size_in_bytes

    def test_empty_rejected(self, vectors):
        _, metric, _ = vectors
        with pytest.raises(ValueError):
            PMTree.build([], metric)

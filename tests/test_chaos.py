"""Chaos harness: concurrent mixed queries against a fault-injected store.

The serving layer's whole contract is exercised at once here: N concurrent
range/kNN/count queries — some unlimited, some budget-limited — run through
the :class:`~repro.service.QueryEngine` over a store that injects transient
I/O errors.  Every query must finish (no deadlock), and every result must be
either complete-and-correct or flagged partial with sound contents.  Because
the tree caches no pages (``cache_pages=0``) and a successful attempt is by
construction fault-free (a faulted attempt retries with fresh counters),
each query's per-context counters must *exactly* match a serial fault-free
replay with the same limits — that is the counter-isolation guarantee.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.spbtree import SPBTree
from repro.distance import EuclideanDistance
from repro.service import QueryContext, QueryEngine
from repro.storage.faults import FaultInjector


def _pairs_key(items):
    return [(d, repr(o)) for d, o in items]


def _objs_key(items):
    return [repr(o) for o in items]


@pytest.fixture()
def chaos_tree(small_vectors):
    """A checksummed, cache-less tree whose RAF injects transient faults."""
    tree = SPBTree.build(
        small_vectors, EuclideanDistance(), seed=7, cache_pages=0, checksums=True
    )
    injector = FaultInjector(tree.raf.pagefile, seed=37, io_error_rate=0.01)
    tree.raf.pagefile = injector
    tree.raf.buffer_pool.pagefile = injector
    yield tree, injector
    tree.raf.pagefile = injector.inner
    tree.raf.buffer_pool.pagefile = injector.inner


@pytest.fixture()
def clean_tree(small_vectors):
    """An identical tree with no fault injection, for serial ground truth."""
    return SPBTree.build(
        small_vectors, EuclideanDistance(), seed=7, cache_pages=0, checksums=True
    )


def _workload(vectors):
    """24 mixed queries: (kind, args, limits) — budgeted and unlimited."""
    jobs = []
    for i in range(8):
        q = vectors[i * 17 % len(vectors)]
        jobs.append(("range", (q, 0.6), {}))
        jobs.append(("knn", (q, 5), {}))
        jobs.append(("count", (q, 0.8), {}))
    # Budget-limited variants: these must degrade identically every run.
    for i, budget in enumerate((10, 25, 60)):
        q = vectors[i * 31 % len(vectors)]
        jobs[i * 3] = ("range", (q, 0.9), {"max_compdists": budget})
        jobs[i * 3 + 1] = ("knn", (q, 8), {"max_compdists": budget})
    return jobs


class TestChaosHarness:
    def test_concurrent_mixed_queries_survive_faults(
        self, chaos_tree, clean_tree, small_vectors
    ):
        tree, injector = chaos_tree
        jobs = _workload(small_vectors)
        assert len(jobs) >= 8  # the acceptance floor for concurrency

        with QueryEngine(
            tree, workers=4, max_queue=len(jobs), retry_attempts=25,
            retry_base_delay=0.001,
        ) as engine:
            pending = [
                engine.submit(kind, *args, **limits)
                for kind, args, limits in jobs
            ]
            # No deadlock: every handle resolves well within the timeout.
            results = [p.result(timeout=120) for p in pending]

        assert engine.served == len(jobs)
        assert engine.failed == 0

        # Every result is complete-and-correct or flagged-partial-and-sound,
        # and its counters exactly match a serial fault-free replay.
        for (kind, args, limits), pend, result in zip(jobs, pending, results):
            ctx = QueryContext.with_limits(**limits)
            if kind == "range":
                serial = clean_tree.range_query(*args, context=ctx)
                assert _objs_key(result) == _objs_key(serial)
            elif kind == "knn":
                serial = clean_tree.knn_query(*args, context=ctx)
                assert _pairs_key(result) == _pairs_key(serial)
            else:
                serial = clean_tree.range_count(*args, context=ctx)
                assert result.count == serial.count
            assert result.complete == serial.complete
            if not result.complete:
                assert result.reason.kind == serial.reason.kind
            # Exact counter isolation under concurrency.
            assert pend.context.compdists == ctx.compdists
            assert pend.context.page_accesses == ctx.page_accesses

    def test_partial_results_remain_sound_under_faults(
        self, chaos_tree, clean_tree, small_vectors
    ):
        """Budgeted kNN under faults still yields a prefix of the true
        distances; budgeted range still yields verified hits."""
        tree, _ = chaos_tree
        q = small_vectors[5]
        true_d = [d for d, _ in clean_tree.knn_query(q, 8)]
        full_range = set(_objs_key(clean_tree.range_query(q, 0.9)))
        metric = EuclideanDistance()
        with QueryEngine(tree, workers=3, retry_attempts=25,
                         retry_base_delay=0.001) as engine:
            handles = []
            for budget in (8, 15, 30, 60, 120):
                handles.append(engine.submit("knn", q, 8, max_compdists=budget))
                handles.append(engine.submit("range", q, 0.9, max_compdists=budget))
            for i, pend in enumerate(handles):
                result = pend.result(timeout=120)
                if i % 2 == 0:  # knn
                    got = [d for d, _ in result]
                    assert got == true_d[: len(got)]
                else:  # range
                    for obj in result:
                        assert metric(q, obj) <= 0.9
                        assert repr(obj) in full_range

    def test_no_deadlock_on_engine_stop_with_queued_work(
        self, chaos_tree, small_vectors
    ):
        """stop() drains queued queries and joins all workers."""
        tree, _ = chaos_tree
        engine = QueryEngine(tree, workers=2, max_queue=16,
                             retry_attempts=25, retry_base_delay=0.001).start()
        pending = [
            engine.submit("count", small_vectors[i], 0.5) for i in range(6)
        ]
        engine.stop(wait=True)
        for p in pending:
            assert p.done
            p.result(timeout=1)  # must not raise


class TestCounterIsolation:
    """Satellite: interleaved queries on two raw threads account their own
    compdists / page accesses exactly (no engine involved)."""

    def test_two_threads_match_serial_counters(self, clean_tree, small_vectors):
        tree = clean_tree
        q_range, q_knn = small_vectors[3], small_vectors[11]
        rounds = 5

        # Serial ground truth, one context per query.
        serial_range = [QueryContext() for _ in range(rounds)]
        serial_knn = [QueryContext() for _ in range(rounds)]
        range_truth = [
            _objs_key(tree.range_query(q_range, 0.7, context=c))
            for c in serial_range
        ]
        knn_truth = [
            _pairs_key(tree.knn_query(q_knn, 6, context=c)) for c in serial_knn
        ]

        barrier = threading.Barrier(2)
        thread_range = [QueryContext() for _ in range(rounds)]
        thread_knn = [QueryContext() for _ in range(rounds)]
        out: dict = {}
        errors: list = []

        def run(name, fn):
            try:
                barrier.wait(timeout=30)
                out[name] = fn()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        t1 = threading.Thread(
            target=run,
            args=(
                "range",
                lambda: [
                    _objs_key(tree.range_query(q_range, 0.7, context=c))
                    for c in thread_range
                ],
            ),
        )
        t2 = threading.Thread(
            target=run,
            args=(
                "knn",
                lambda: [
                    _pairs_key(tree.knn_query(q_knn, 6, context=c))
                    for c in thread_knn
                ],
            ),
        )
        t1.start(), t2.start()
        t1.join(timeout=60), t2.join(timeout=60)
        assert not t1.is_alive() and not t2.is_alive()
        assert not errors

        assert out["range"] == range_truth
        assert out["knn"] == knn_truth
        for got, want in zip(thread_range, serial_range):
            assert (got.compdists, got.page_accesses) == (
                want.compdists,
                want.page_accesses,
            )
        for got, want in zip(thread_knn, serial_knn):
            assert (got.compdists, got.page_accesses) == (
                want.compdists,
                want.page_accesses,
            )

"""Tests for the observability layer (repro.obs).

The load-bearing assertion here is span/shard *reconciliation*: for a
traced query, the per-level span tallies must sum exactly to the query's
``QueryContext`` shard totals.  Buffer-pool state changes a query's page
accesses, so any test that compares two runs of the same query calls
``tree.flush_cache()`` before each run.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.core.spbtree import SPBTree
from repro.distance import EuclideanDistance
from repro.obs import (
    QueryTrace,
    SlowQueryLog,
    SnapshotWriter,
    diff_snapshots,
    parse_text,
    read_slow_log,
    render_text,
    snapshot,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.service import QueryContext, QueryEngine
from repro.stats import StatsSession
from repro.storage.faults import TransientIOError


@pytest.fixture(scope="module")
def vec_tree(small_vectors):
    return SPBTree.build(small_vectors, EuclideanDistance(), seed=7)


@pytest.fixture()
def obs_enabled():
    """Enable the process-wide instruments for one test, always disabling."""
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("t_ups_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_level", "help")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0
        backing = {"v": 0.25}
        cb = reg.gauge("t_ratio", "help", fn=lambda: backing["v"])
        assert cb.value == 0.25
        backing["v"] = 0.75
        assert cb.value == 0.75

    def test_histogram_quantiles_and_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_lat_seconds", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(2.6)
        counts = dict(h.bucket_counts())
        assert counts[0.1] == 2  # cumulative
        assert counts[1.0] == 3
        assert counts[float("inf")] == 4
        assert h.p50 <= h.p95 <= h.p99
        assert h.quantile(0.5) <= 1.0

    def test_labeled_family_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_ops_total", "help", labelnames=("kind",))
        fam.labels(kind="knn").inc(3)
        fam.labels(kind="range").inc(1)
        assert fam.labels(kind="knn").value == 3
        samples = dict(fam.samples())
        assert set(samples) == {("knn",), ("range",)}
        with pytest.raises(ValueError):
            fam.labels(flavor="knn")

    def test_registration_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("t_same_total", "help")
        b = reg.counter("t_same_total", "help")
        a.inc()
        assert b.value == 1.0  # same underlying child
        with pytest.raises(ValueError):
            reg.gauge("t_same_total", "re-registered as another kind")
        with pytest.raises(ValueError):
            reg.counter("not a valid name!", "help")


# ------------------------------------------------- span/shard reconciliation


def _traced(tree, kind, *args, **limits):
    """Run one traced query on a cold cache; returns (context, result)."""
    ctx = QueryContext.with_limits(**limits) if limits else QueryContext()
    ctx.trace = QueryTrace(kind)
    tree.flush_cache()
    fn = {
        "range": tree.range_query,
        "knn": tree.knn_query,
        "count": tree.range_count,
    }[kind]
    result = fn(*args, context=ctx)
    return ctx, result


class TestTraceReconciliation:
    def test_knn_levels_sum_exactly_to_shard_totals(
        self, vec_tree, small_vectors
    ):
        ctx, result = _traced(vec_tree, "knn", small_vectors[5], 6)
        assert len(result) == 6
        assert ctx.compdists > 0 and ctx.page_accesses > 0
        assert ctx.trace.attributed_totals() == (
            ctx.compdists,
            ctx.page_accesses,
        )
        assert ctx.trace.levels  # per-level spans were recorded

    def test_range_levels_sum_exactly_to_shard_totals(
        self, vec_tree, small_vectors
    ):
        ctx, result = _traced(vec_tree, "range", small_vectors[9], 0.8)
        assert ctx.trace.attributed_totals() == (
            ctx.compdists,
            ctx.page_accesses,
        )

    def test_count_levels_sum_exactly_to_shard_totals(
        self, vec_tree, small_vectors
    ):
        ctx, result = _traced(vec_tree, "count", small_vectors[9], 0.8)
        assert result.count >= 0
        assert ctx.trace.attributed_totals() == (
            ctx.compdists,
            ctx.page_accesses,
        )

    def test_degraded_knn_still_reconciles(self, vec_tree, small_vectors):
        ctx, result = _traced(
            vec_tree, "knn", small_vectors[5], 6, max_compdists=20
        )
        assert not result.complete
        assert not ctx.trace.complete
        assert ctx.trace.reason
        assert ctx.trace.attributed_totals() == (
            ctx.compdists,
            ctx.page_accesses,
        )

    def test_tracing_does_not_change_counters(self, vec_tree, small_vectors):
        q = small_vectors[7]
        vec_tree.flush_cache()
        plain = QueryContext()
        vec_tree.knn_query(q, 5, context=plain)
        ctx, _ = _traced(vec_tree, "knn", q, 5)
        assert (ctx.compdists, ctx.page_accesses) == (
            plain.compdists,
            plain.page_accesses,
        )

    def test_pruning_diagnostics_are_recorded(self, vec_tree, small_vectors):
        ctx, _ = _traced(vec_tree, "range", small_vectors[3], 0.8)
        merged: dict[str, int] = {}
        for span in ctx.trace.root.children:
            for key, amount in span.counts.items():
                merged[key] = merged.get(key, 0) + amount
        assert merged.get("nodes_visited", 0) > 0
        # At least one pruning / verification rule fired on a real workload.
        assert any(
            key in merged
            for key in (
                "children_pruned_lemma1",
                "entries_pruned_lemma1",
                "lemma2_accepts",
                "entries_verified",
            )
        )

    def test_trace_as_dict_is_json_shaped(self, vec_tree, small_vectors):
        import json

        ctx, _ = _traced(vec_tree, "knn", small_vectors[2], 4)
        encoded = json.dumps(ctx.trace.as_dict())
        assert '"level-0"' in encoded


# ------------------------------------------------------ disabled-by-default


class TestDisabledByDefault:
    def test_disabled_unless_enabled(self):
        assert not obs.enabled()

    def test_stats_session_identical_enabled_vs_disabled(
        self, vec_tree, small_vectors
    ):
        q = small_vectors[11]
        vec_tree.flush_cache(reset_stats=True)
        with StatsSession(vec_tree) as off:
            vec_tree.knn_query(q, 4)
        obs.enable()
        try:
            vec_tree.flush_cache(reset_stats=True)
            with StatsSession(vec_tree) as on:
                vec_tree.knn_query(q, 4)
        finally:
            obs.disable()
        assert (
            off.stats.page_accesses,
            off.stats.distance_computations,
        ) == (on.stats.page_accesses, on.stats.distance_computations)

    def test_disabled_queries_move_no_instrument(self, vec_tree, small_vectors):
        from repro.obs import instruments

        # Force the bundles to exist, then show disabled traffic skips them.
        obs.enable()
        obs.disable()
        hits_before = instruments.buffer_pool().hits.value
        vec_tree.flush_cache()
        vec_tree.knn_query(small_vectors[1], 4)
        assert instruments.buffer_pool().hits.value == hits_before


# ------------------------------------------------------------ exposition


class TestExposition:
    def test_render_covers_core_families_and_parses(
        self, obs_enabled, vec_tree, small_vectors
    ):
        vec_tree.flush_cache()
        vec_tree.knn_query(small_vectors[3], 4)
        text = render_text()
        families = parse_text(text)
        for name in (
            "repro_buffer_pool_hits_total",
            "repro_buffer_pool_hit_ratio",
            "repro_pagefile_read_seconds",
            "repro_wal_fsync_seconds",
            "repro_engine_queue_depth",
            "repro_query_latency_seconds",
        ):
            assert name in families, name
        assert families["repro_query_latency_seconds"]["type"] == "histogram"

    def test_histograms_expose_bucket_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_h_seconds", "help", buckets=(0.5, 1.0))
        h.observe(0.2)
        text = render_text(reg)
        assert 't_h_seconds_bucket{le="+Inf"} 1' in text
        assert "t_h_seconds_sum" in text
        assert "t_h_seconds_count 1" in text
        parse_text(text)  # round-trips

    def test_parse_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            parse_text("this is not an exposition\n")

    def test_parse_rejects_incomplete_histogram(self):
        bad = (
            "# HELP t_h broken\n"
            "# TYPE t_h histogram\n"
            't_h_bucket{le="1.0"} 1\n'
        )
        with pytest.raises(ValueError):
            parse_text(bad)


# ------------------------------------------------------------- slow log


class TestSlowQueryLog:
    def test_threshold_filters_and_roundtrips(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=5.0)
        assert not log.maybe_record("knn", 0.001)
        assert log.maybe_record("knn", 0.5)
        log.close()
        entries = read_slow_log(path)
        assert len(entries) == 1
        assert entries[0]["kind"] == "knn"
        assert entries[0]["elapsed_ms"] == pytest.approx(500.0)
        assert log.recorded == 1

    def test_entry_carries_span_tree_and_reason(
        self, tmp_path, vec_tree, small_vectors
    ):
        ctx, result = _traced(
            vec_tree, "knn", small_vectors[5], 6, max_compdists=20
        )
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0)
        log.maybe_record("knn", 0.25, ctx, result)
        log.close()
        (entry,) = read_slow_log(path)
        assert entry["compdists"] == ctx.compdists
        assert entry["complete"] is False
        assert "compdists budget" in entry["reason"]
        assert entry["trace"]["spans"]["children"]  # the per-level span tree

    def test_size_based_rotation_keeps_one_generation(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0, max_bytes=400)
        for i in range(40):
            assert log.maybe_record(f"knn-{i}", 0.1)
        log.close()
        assert log.rotations >= 1
        assert log.recorded == 40
        assert os.path.exists(path + ".1")
        # Neither file exceeds the cap (each rotation starts fresh).
        assert os.path.getsize(path) <= 400
        assert os.path.getsize(path + ".1") <= 400
        # Both generations parse; together they hold the newest entries
        # (older generations were rotated away).
        kept = read_slow_log(path + ".1") + read_slow_log(path)
        kinds = [e["kind"] for e in kept]
        assert kinds == [f"knn-{i}" for i in range(40 - len(kinds), 40)]

    def test_rotation_resumes_from_existing_file_size(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        first = SlowQueryLog(path=path, threshold_ms=0.0, max_bytes=300)
        first.maybe_record("warm", 0.1)
        first.close()
        reopened = SlowQueryLog(path=path, threshold_ms=0.0, max_bytes=300)
        for i in range(20):
            reopened.maybe_record(f"q{i}", 0.1)
        reopened.close()
        assert reopened.rotations >= 1  # the pre-existing bytes counted

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0)
        for i in range(50):
            log.maybe_record("knn", 0.1)
        log.close()
        assert log.rotations == 0
        assert not os.path.exists(path + ".1")
        assert len(read_slow_log(path)) == 50

    def test_max_bytes_requires_path(self):
        with pytest.raises(ValueError, match="path"):
            SlowQueryLog(threshold_ms=0.0, max_bytes=100)
        with pytest.raises(ValueError, match="positive"):
            SlowQueryLog(path="x", max_bytes=0)

    def test_rotation_keeps_max_generations(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(
            path=path, threshold_ms=0.0, max_bytes=200, max_generations=3
        )
        for i in range(60):
            assert log.maybe_record(f"knn-{i}", 0.1)
        log.close()
        assert log.rotations >= 4  # enough churn to exercise the cascade
        for gen in (1, 2, 3):
            assert os.path.exists(f"{path}.{gen}"), f"generation {gen} missing"
            assert os.path.getsize(f"{path}.{gen}") <= 200
        # Nothing beyond the cap survives.
        assert not os.path.exists(f"{path}.4")
        # Generations chain oldest-to-newest with no gaps: .3 .2 .1 then
        # the live file hold one contiguous, ordered suffix of the stream.
        kept = []
        for gen in (3, 2, 1):
            kept.extend(read_slow_log(f"{path}.{gen}"))
        kept.extend(read_slow_log(path))
        kinds = [e["kind"] for e in kept]
        assert kinds == [f"knn-{i}" for i in range(60 - len(kinds), 60)]

    def test_default_rotation_still_keeps_exactly_one_generation(
        self, tmp_path
    ):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0, max_bytes=200)
        for i in range(60):
            log.maybe_record(f"knn-{i}", 0.1)
        log.close()
        assert log.rotations >= 2
        assert os.path.exists(path + ".1")
        assert not os.path.exists(path + ".2")

    def test_max_generations_must_be_positive(self):
        with pytest.raises(ValueError, match="max_generations"):
            SlowQueryLog(threshold_ms=0.0, max_generations=0)


# ------------------------------------------------------------- snapshots


class TestSnapshots:
    def test_diff_reports_counter_deltas(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help")
        g = reg.gauge("t_depth", "help")
        c.inc(3)
        g.set(7)
        before = snapshot(reg)
        c.inc(2)
        g.set(4)
        after = snapshot(reg)
        diff = diff_snapshots(before, after)
        assert diff["t_total"]["samples"][""] == 2
        assert diff["t_depth"]["samples"][""] == {"before": 7.0, "after": 4.0}

    def test_writer_respects_interval_and_final_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("t_total", "help").inc()
        writer = SnapshotWriter(
            str(tmp_path), interval_seconds=100.0, registry=reg
        )
        assert writer.maybe_write(now=0.0) is not None
        assert writer.maybe_write(now=50.0) is None  # inside the interval
        assert writer.maybe_write(now=200.0) is not None
        final = writer.write(meta={"event": "final"})
        assert writer.written == 3
        from repro.obs import load_snapshot

        snap = load_snapshot(final)
        assert snap["meta"] == {"event": "final"}
        assert snap["metrics"]["t_total"]["samples"][""] == 1.0


# ------------------------------------------------------- engine instruments


class _FlakyOnce:
    """Delegating tree wrapper whose first query attempt does a full
    traversal's worth of work and then fails transiently."""

    def __init__(self, tree):
        self._tree = tree
        self.failures_left = 1

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def knn_query(self, *args, **kwargs):
        result = self._tree.knn_query(*args, **kwargs)
        if self.failures_left:
            self.failures_left -= 1
            raise TransientIOError("injected: attempt lost after doing work")
        return result


class TestEngineInstruments:
    def test_retried_attempt_visible_in_retries_counter(
        self, obs_enabled, small_vectors
    ):
        from repro.obs import instruments

        tree = SPBTree.build(
            small_vectors, EuclideanDistance(), seed=7, cache_pages=0
        )
        q = small_vectors[6]
        clean = QueryContext()
        tree.knn_query(q, 4, context=clean)
        retries_before = instruments.engine().retries.value
        flaky = _FlakyOnce(tree)
        with QueryEngine(
            flaky, workers=1, retry_attempts=3, retry_base_delay=0.0
        ) as engine:
            pending = engine.submit("knn", q, 4)
            result = pending.result(timeout=60)
        assert result.complete
        # Only the successful attempt's work lands in the query's shard...
        assert pending.context.compdists == clean.compdists
        assert pending.context.page_accesses == clean.page_accesses
        # ...while the retried attempt is visible in the counters.
        assert engine.retries == 1
        assert instruments.engine().retries.value == retries_before + 1

    def test_query_latency_histogram_partitions_by_kind(
        self, obs_enabled, vec_tree, small_vectors
    ):
        from repro.obs import instruments

        fam = instruments.engine().query_latency
        knn_before = fam.labels(kind="knn").count
        range_before = fam.labels(kind="range").count
        with QueryEngine(vec_tree, workers=2) as engine:
            engine.knn(small_vectors[0], 3)
            engine.range(small_vectors[1], 0.5)
        assert fam.labels(kind="knn").count == knn_before + 1
        assert fam.labels(kind="range").count == range_before + 1
        assert isinstance(fam.labels(kind="knn"), Histogram)


class TestSlowQueryLogSource:
    def test_source_defaults_to_inproc(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0)
        log.maybe_record("knn", 0.1)
        log.close()
        (entry,) = read_slow_log(path)
        assert entry["source"] == "inproc"

    def test_explicit_source_is_recorded(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0)
        log.maybe_record("range", 0.1, source="net:10.0.0.7:55312")
        log.close()
        (entry,) = read_slow_log(path)
        assert entry["source"] == "net:10.0.0.7:55312"

    def test_wire_queries_are_attributed_to_their_peer(
        self, tmp_path, small_vectors
    ):
        """End to end: a slow query arriving over TCP logs source=net:<peer>,
        while the same query submitted in-process logs source=inproc."""
        from repro.core.spbtree import SPBTree
        from repro.distance import EuclideanDistance
        from repro.net import NetClient, serve_in_thread
        from repro.service import QueryEngine

        tree = SPBTree.build(small_vectors[:100], EuclideanDistance(), seed=7)
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(path=path, threshold_ms=0.0)  # record everything
        engine = QueryEngine(tree, workers=1, slow_log=log).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        try:
            with NetClient("127.0.0.1", handle.port) as client:
                client.knn_query(small_vectors[0], 3)
            engine.knn(small_vectors[0], 3)
        finally:
            handle.stop(2.0)
            engine.stop()
            log.close()
        entries = read_slow_log(path)
        sources = [e["source"] for e in entries]
        assert any(s.startswith("net:127.0.0.1:") for s in sources)
        assert "inproc" in sources

"""Unit tests for the storage substrate: page file, buffer pool, serializers."""

import numpy as np
import pytest

from repro.storage import (
    BufferPool,
    BytesSerializer,
    PageFile,
    PickleSerializer,
    StringSerializer,
    UInt8VectorSerializer,
    VectorSerializer,
    serializer_for,
)


class TestPageFile:
    def test_round_trip(self):
        pf = PageFile(page_size=128)
        pid = pf.allocate()
        pf.write_page(pid, b"hello")
        data = pf.read_page(pid)
        assert data[:5] == b"hello"
        assert len(data) == 128  # padded

    def test_counts_accesses(self):
        pf = PageFile(page_size=64)
        pid = pf.allocate()
        assert pf.counter.total == 0  # allocation is free
        pf.write_page(pid, b"x")
        pf.read_page(pid)
        pf.read_page(pid)
        assert pf.counter.writes == 1
        assert pf.counter.reads == 2

    def test_size_accounting(self):
        pf = PageFile(page_size=256)
        for _ in range(5):
            pf.allocate()
        assert pf.num_pages == 5
        assert pf.size_in_bytes == 5 * 256

    def test_rejects_oversized_write(self):
        pf = PageFile(page_size=16)
        pid = pf.allocate()
        with pytest.raises(ValueError):
            pf.write_page(pid, b"x" * 17)

    def test_rejects_bad_page_id(self):
        pf = PageFile(page_size=16)
        with pytest.raises(IndexError):
            pf.read_page(0)
        with pytest.raises(IndexError):
            pf.read_page(-1)

    def test_persistence(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        pf = PageFile(page_size=64, path=path)
        pid = pf.allocate()
        pf.write_page(pid, b"durable")
        pf.close()
        reopened = PageFile(page_size=64, path=path)
        assert reopened.read_page(0)[:7] == b"durable"
        reopened.close()

    def test_rejects_unaligned_file(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"x" * 100)
        with pytest.raises(ValueError):
            PageFile(page_size=64, path=str(path))


class TestBufferPool:
    def test_hit_costs_no_page_access(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=4)
        pid = pf.allocate()
        pf.write_page(pid, b"data")
        before = pf.counter.reads
        pool.read_page(pid)
        pool.read_page(pid)
        pool.read_page(pid)
        assert pf.counter.reads == before + 1
        assert pool.hits == 2
        assert pool.misses == 1

    def test_zero_capacity_disables_caching(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=0)
        pid = pf.allocate()
        pf.write_page(pid, b"x")
        before = pf.counter.reads
        pool.read_page(pid)
        pool.read_page(pid)
        assert pf.counter.reads == before + 2

    def test_lru_eviction(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=2)
        pids = [pf.allocate() for _ in range(3)]
        for pid in pids:
            pf.write_page(pid, bytes([pid]))
        pool.read_page(pids[0])
        pool.read_page(pids[1])
        pool.read_page(pids[2])  # evicts pids[0]
        before = pf.counter.reads
        pool.read_page(pids[0])
        assert pf.counter.reads == before + 1  # miss again

    def test_write_through_updates_cache(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=2)
        pid = pf.allocate()
        pool.write_page(pid, b"v1")
        assert pool.read_page(pid)[:2] == b"v1"
        pool.write_page(pid, b"v2")
        before = pf.counter.reads
        assert pool.read_page(pid)[:2] == b"v2"
        assert pf.counter.reads == before  # served from cache, fresh data

    def test_flush(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=4)
        pid = pf.allocate()
        pf.write_page(pid, b"x")
        pool.read_page(pid)
        pool.flush()
        before = pf.counter.reads
        pool.read_page(pid)
        assert pf.counter.reads == before + 1

    def test_flush_keeps_stats_by_default(self):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=4)
        pid = pf.allocate()
        pf.write_page(pid, b"x")
        pool.read_page(pid)  # miss
        pool.read_page(pid)  # hit
        pool.flush()
        assert (pool.hits, pool.misses) == (1, 1)

    def test_flush_reset_stats(self):
        """Satellite: flush(reset_stats=True) restarts the hit/miss tallies,
        so a flush-between-queries protocol measures each query alone."""
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=4)
        pid = pf.allocate()
        pf.write_page(pid, b"x")
        pool.read_page(pid)
        pool.read_page(pid)
        pool.flush(reset_stats=True)
        assert (pool.hits, pool.misses) == (0, 0)
        pool.read_page(pid)  # cache emptied: a miss again
        assert (pool.hits, pool.misses) == (0, 1)


class TestSerializers:
    def test_string_round_trip(self):
        s = StringSerializer()
        assert s.deserialize(s.serialize("héllo")) == "héllo"

    def test_vector_round_trip(self):
        s = VectorSerializer()
        v = np.array([1.5, -2.0, 3e10])
        out = s.deserialize(s.serialize(v))
        assert np.array_equal(out, v)
        assert out.flags.writeable

    def test_uint8_round_trip(self):
        s = UInt8VectorSerializer()
        v = np.array([0, 1, 255], dtype=np.uint8)
        assert np.array_equal(s.deserialize(s.serialize(v)), v)

    def test_bytes_round_trip(self):
        s = BytesSerializer()
        assert s.deserialize(s.serialize(b"\x00\xff")) == b"\x00\xff"

    def test_pickle_round_trip(self):
        s = PickleSerializer()
        obj = {"a": [1, 2], "b": ("x", 3.5)}
        assert s.deserialize(s.serialize(obj)) == obj

    def test_serializer_for_dispatch(self):
        assert isinstance(serializer_for("word"), StringSerializer)
        assert isinstance(serializer_for(b"raw"), BytesSerializer)
        assert isinstance(
            serializer_for(np.zeros(3, dtype=np.uint8)), UInt8VectorSerializer
        )
        assert isinstance(serializer_for(np.zeros(3)), VectorSerializer)
        assert isinstance(serializer_for([1.0, 2.0]), VectorSerializer)
        assert isinstance(serializer_for({"any": 1}), PickleSerializer)


class TestBufferPoolResize:
    def _pool(self, capacity):
        pf = PageFile(page_size=64)
        pool = BufferPool(pf, capacity=capacity)
        pids = [pf.allocate() for _ in range(6)]
        for pid in pids:
            pf.write_page(pid, bytes([pid]))
        return pf, pool, pids

    def test_shrink_evicts_lru_down_to_bound(self):
        pf, pool, pids = self._pool(6)
        for pid in pids:
            pool.read_page(pid)
        pool.resize(2)
        assert pool.capacity == 2
        assert len(pool._cache) == 2
        before = pf.counter.reads
        # The two most-recently-used pages survived the shrink…
        pool.read_page(pids[-1])
        pool.read_page(pids[-2])
        assert pf.counter.reads == before
        # …and the least-recently-used ones did not.
        pool.read_page(pids[0])
        assert pf.counter.reads == before + 1

    def test_grow_stops_evicting(self):
        pf, pool, pids = self._pool(2)
        pool.resize(6)
        for pid in pids:
            pool.read_page(pid)
        before = pf.counter.reads
        for pid in pids:
            pool.read_page(pid)
        assert pf.counter.reads == before  # all six now fit

    def test_resize_to_zero_disables_caching(self):
        pf, pool, pids = self._pool(4)
        pool.read_page(pids[0])
        pool.resize(0)
        assert len(pool._cache) == 0
        before = pf.counter.reads
        pool.read_page(pids[0])
        pool.read_page(pids[0])
        assert pf.counter.reads == before + 2

    def test_resize_rejects_negative(self):
        _, pool, _ = self._pool(4)
        with pytest.raises(ValueError):
            pool.resize(-1)

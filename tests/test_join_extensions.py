"""Tests for the join extensions: self-join and kNN join."""

import numpy as np
import pytest

from repro import (
    EditDistance,
    EuclideanDistance,
    SPBTree,
    knn_join,
    similarity_self_join,
)
from repro.baselines import LinearScan
from repro.datasets import generate_words


class TestSelfJoin:
    @pytest.mark.parametrize("eps", [0, 1, 2, 4])
    def test_matches_brute_force(self, eps):
        words = generate_words(200, seed=5)
        metric = EditDistance()
        tree = SPBTree.build(words, metric, num_pivots=3, curve="z", seed=1)
        result = similarity_self_join(tree, eps)
        expected = sum(
            1
            for i, a in enumerate(words)
            for b in words[i + 1 :]
            if metric(a, b) <= eps
        )
        assert len(result.pairs) == expected

    def test_no_self_or_duplicate_pairs(self):
        words = generate_words(200, seed=5)
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=3, curve="z", seed=1
        )
        result = similarity_self_join(tree, 3)
        assert all(a != b for a, b in result.pairs)
        unordered = {frozenset((a, b)) for a, b in result.pairs}
        assert len(unordered) == len(result.pairs)

    def test_vectors(self):
        rng = np.random.default_rng(3)
        data = [rng.normal(size=3) for _ in range(150)]
        metric = EuclideanDistance()
        tree = SPBTree.build(data, metric, num_pivots=3, curve="z", seed=1)
        result = similarity_self_join(tree, 0.7)
        expected = sum(
            1
            for i, a in enumerate(data)
            for b in data[i + 1 :]
            if metric(a, b) <= 0.7
        )
        assert len(result.pairs) == expected

    def test_requires_z_curve(self):
        words = generate_words(60, seed=5)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        with pytest.raises(ValueError, match="Z-order"):
            similarity_self_join(tree, 1)

    def test_negative_epsilon_rejected(self):
        words = generate_words(60, seed=5)
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=2, curve="z", seed=1
        )
        with pytest.raises(ValueError):
            similarity_self_join(tree, -1)


class TestKnnJoin:
    def test_matches_per_query_knn(self):
        metric = EditDistance()
        left = generate_words(80, seed=11)
        right = generate_words(120, seed=12)
        tq = SPBTree.build(left, metric, num_pivots=3, curve="z", seed=1)
        to = SPBTree.build(
            right,
            metric,
            pivots=tq.space.pivots,
            d_plus=tq.space.d_plus,
            curve="z",
        )
        results, stats = knn_join(tq, to, 3)
        assert len(results) == len(left)
        oracle = LinearScan(right, metric)
        # Spot-check a few query objects against brute force.
        stored = {obj_id: obj for _, obj_id, obj in tq.raf.scan()}
        for obj_id in list(results)[:5]:
            expected = oracle.knn_query(stored[obj_id], 3)
            assert [d for d, _ in results[obj_id]] == [
                d for d, _ in expected
            ]
        assert stats.result_size == 3 * len(left)
        assert stats.distance_computations > 0

    def test_invalid_k(self):
        words = generate_words(60, seed=5)
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=2, curve="z", seed=1
        )
        with pytest.raises(ValueError):
            knn_join(tree, tree, 0)

"""Stress and property tests for :class:`repro.service.EpochLock`.

The unit contract (re-entrancy, refused upgrade, writer-may-read) is
covered in ``test_chaos_writes.py``; these tests hammer the lock with many
concurrent readers and writers and check the *properties* that make the
per-shard snapshot model sound:

- the epoch a reader observes never changes while it holds the read side;
- the epoch only ever moves forward, by exactly one per outermost write;
- readers and writers never deadlock, and every thread finishes.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.service import EpochLock


class TestEpochLockStress:
    READERS = 6
    WRITERS = 3
    WRITES_EACH = 40
    READS_EACH = 120

    def test_concurrent_readers_and_writers(self):
        lock = EpochLock()
        start = threading.Barrier(self.READERS + self.WRITERS)
        errors: list[BaseException] = []
        observed_epochs: list[int] = []

        def reader(seed: int):
            rng = random.Random(seed)
            try:
                start.wait(timeout=30)
                for _ in range(self.READS_EACH):
                    with lock.read() as epoch:
                        # Snapshot stability: the epoch cannot move while
                        # any reader holds the lock.
                        assert lock.epoch == epoch
                        if rng.random() < 0.25:
                            with lock.read() as inner:  # re-entrant
                                assert inner == epoch
                        assert lock.epoch == epoch
                    observed_epochs.append(epoch)
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        def writer(seed: int):
            rng = random.Random(seed)
            try:
                start.wait(timeout=30)
                for _ in range(self.WRITES_EACH):
                    before = lock.epoch
                    with lock.write():
                        if rng.random() < 0.25:
                            with lock.write():  # nested: one logical write
                                pass
                        if rng.random() < 0.25:
                            with lock.read() as epoch:  # writer may read
                                assert epoch == lock.epoch
                    assert lock.epoch > before
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(self.READERS)
        ] + [
            threading.Thread(target=writer, args=(100 + i,))
            for i in range(self.WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "deadlock"
        assert not errors, errors
        # Exactly one epoch bump per outermost write, no lost updates.
        assert lock.epoch == self.WRITERS * self.WRITES_EACH
        assert len(observed_epochs) == self.READERS * self.READS_EACH
        assert all(0 <= e <= lock.epoch for e in observed_epochs)

    def test_epoch_is_monotonic_across_interleavings(self):
        lock = EpochLock()
        seen: list[int] = []
        stop = threading.Event()
        errors: list[BaseException] = []

        def watcher():
            try:
                last = -1
                while not stop.is_set():
                    with lock.read() as epoch:
                        assert epoch >= last, "epoch went backwards"
                        last = epoch
                    seen.append(epoch)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=watcher)
        t.start()
        for _ in range(200):
            with lock.write():
                pass
        stop.set()
        t.join(timeout=60)
        assert not t.is_alive() and not errors
        assert lock.epoch == 200
        assert seen == sorted(seen)

    def test_upgrade_refused_even_under_contention(self):
        lock = EpochLock()
        release = threading.Event()
        entered = threading.Event()

        def holder():
            with lock.read():
                entered.set()
                release.wait(timeout=30)

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(timeout=30)
        # Our own read hold still refuses the upgrade, regardless of the
        # other reader.
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                with lock.write():
                    pass
        release.set()
        t.join(timeout=30)
        assert not t.is_alive()

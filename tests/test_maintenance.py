"""Tests for SPB-tree maintenance operations: range_count and rebuild."""

import numpy as np
import pytest

from repro.core.spbtree import SPBTree
from repro.datasets import generate_color, generate_words
from repro.distance import EditDistance, MinkowskiDistance


@pytest.fixture(scope="module")
def word_tree():
    words = generate_words(400, seed=3)
    tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
    return words, tree


class TestRangeCount:
    @pytest.mark.parametrize("radius", [0, 1, 3, 8, 20])
    def test_count_equals_query_length(self, word_tree, radius):
        words, tree = word_tree
        for q in words[:3]:
            assert tree.range_count(q, radius) == len(
                tree.range_query(q, radius)
            )

    def test_count_never_more_page_accesses(self, word_tree):
        words, tree = word_tree
        q = words[7]
        tree.reset_counters()
        tree.flush_cache()
        tree.range_count(q, 8)
        count_pa = tree.page_accesses
        tree.reset_counters()
        tree.flush_cache()
        tree.range_query(q, 8)
        assert count_pa <= tree.page_accesses

    def test_lemma2_entries_cost_no_raf_reads(self):
        """At radius 3·d+, Lemma 2 proves every object within range
        (r − d(q,pᵢ) ≥ 2·d+ ≥ any d(o,pᵢ) upper bound), so the count
        costs only B+-tree accesses."""
        words = generate_words(300, seed=5)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        q = words[0]
        tree.reset_counters()
        tree.flush_cache()
        n = tree.range_count(q, 3 * tree.space.d_plus)
        assert n == len(words)
        assert tree.raf.page_accesses == 0

    def test_negative_radius_rejected(self, word_tree):
        _, tree = word_tree
        with pytest.raises(ValueError):
            tree.range_count("x", -1)

    def test_counts_respect_deletions(self):
        words = generate_words(200, seed=9)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        q = words[0]
        before = tree.range_count(q, 2)
        assert tree.delete(q)
        assert tree.range_count(q, 2) == before - 1


class TestRebuild:
    def test_rebuild_preserves_results(self):
        data = generate_color(300, seed=5)
        metric = MinkowskiDistance(5)
        tree = SPBTree.build(data, metric, num_pivots=3, seed=1)
        for obj in data[:100]:
            assert tree.delete(obj)
        fresh = tree.rebuild()
        assert len(fresh) == 200
        q = data[150]
        assert len(fresh.range_query(q, 0.1)) == len(tree.range_query(q, 0.1))
        got = fresh.knn_query(q, 5)
        expected = tree.knn_query(q, 5)
        assert [d for d, _ in got] == pytest.approx([d for d, _ in expected])

    def test_rebuild_reclaims_space(self):
        words = generate_words(500, seed=7)
        tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
        for w in words[:300]:
            tree.delete(w)
        fresh = tree.rebuild()
        assert fresh.size_in_bytes < tree.size_in_bytes

    def test_rebuild_reuses_pivots(self, word_tree):
        _, tree = word_tree
        fresh = tree.rebuild()
        assert fresh.space.pivots == tree.space.pivots

    def test_rebuild_keeps_curve_family(self):
        words = generate_words(100, seed=7)
        z_tree = SPBTree.build(
            words, EditDistance(), num_pivots=2, curve="z", seed=1
        )
        assert z_tree.rebuild().curve.is_monotone

    def test_rebuild_empty_rejected(self):
        tree = SPBTree(EditDistance(), ["p"], 10.0)
        with pytest.raises(ValueError):
            tree.rebuild()

"""WAL torn-tail fuzzer: damage every byte of the last two frames.

The durability contract says a crash mid-append leaves a log that replays
to *exactly* the committed prefix: the tolerant reader stops cleanly at
the last whole frame, the strict reader raises a typed error — and
neither ever yields a partial record.  This suite proves it mechanically:
a valid log is truncated at, and bit-flipped at, **every byte offset** of
its final two frames, and each damaged variant must scan to a byte-exact
prefix of the pristine records.
"""

from __future__ import annotations

import os

import pytest

from repro.storage.wal import (
    _FRAME,
    WalCorruptionError,
    WriteAheadLog,
    scan_wal,
)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A valid log plus its frame layout: (bytes, frame start offsets,
    records).  Offsets include the end-of-file sentinel."""
    path = str(tmp_path_factory.mktemp("walfuzz") / "wal.log")
    wal = WriteAheadLog(path, fsync=False)
    wal.start(0, 0, 0)
    for i in range(6):
        wal.append_insert(i, 1000 + 17 * i, f"object-{i}-{'x' * (5 + 3 * i)}".encode())
    wal.append_delete(1017, b"object-1-xxxxxxxx")
    wal.close()
    with open(path, "rb") as fh:
        data = fh.read()
    boundaries = [0]
    offset = 0
    while offset < len(data):
        length, _ = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size + length
        boundaries.append(offset)
    assert boundaries[-1] == len(data)
    header, records, valid_end, torn = scan_wal(path)
    assert header is not None and not torn and valid_end == len(data)
    return data, boundaries, records


def _write(tmp_path, data: bytes) -> str:
    path = str(tmp_path / "wal.log")
    with open(path, "wb") as fh:
        fh.write(data)
    return path


def _whole_mutation_frames_before(boundaries, cut: int) -> int:
    """How many *mutation* frames end at or before ``cut`` (frame 0 is
    the header)."""
    whole = sum(1 for b in boundaries[1:] if b <= cut)
    return max(0, whole - 1)


class TestTruncationFuzz:
    def test_every_truncation_point_of_last_two_frames(
        self, pristine, tmp_path
    ):
        data, boundaries, records = pristine
        start = boundaries[-3]  # first byte of the second-to-last frame
        for cut in range(start, len(data) + 1):
            path = _write(tmp_path, data[:cut])
            header, got, valid_end, torn = scan_wal(path)
            assert header is not None
            expect_end = max(b for b in boundaries if b <= cut)
            assert valid_end == expect_end, f"cut at {cut}"
            assert torn == (cut != expect_end)
            # Never a partial record: byte-exact prefix, nothing more.
            k = _whole_mutation_frames_before(boundaries, cut)
            assert got == records[:k], f"cut at {cut}"
            if torn:
                with pytest.raises(WalCorruptionError):
                    scan_wal(path, strict=True)
            else:
                scan_wal(path, strict=True)  # clean cut: no error

    def test_open_truncates_torn_tail_and_stays_appendable(
        self, pristine, tmp_path
    ):
        data, boundaries, records = pristine
        cut = boundaries[-1] - 3  # mid-frame: a torn final append
        path = _write(tmp_path, data[:cut])
        wal = WriteAheadLog(path, fsync=False)
        assert wal.torn_tail
        assert wal.size_in_bytes == boundaries[-2]
        assert wal.records() == records[:-1]
        wal.append_insert(99, 4242, b"post-crash append")
        wal.close()
        _, got, _, torn = scan_wal(path)
        assert not torn
        assert got[:-1] == records[:-1] and got[-1].obj_id == 99


class TestBitFlipFuzz:
    @pytest.mark.parametrize("mask", [0x01, 0x80])
    def test_every_bitflip_in_last_two_frames(self, mask, pristine, tmp_path):
        data, boundaries, records = pristine
        start = boundaries[-3]
        for pos in range(start, len(data)):
            damaged = bytearray(data)
            damaged[pos] ^= mask
            path = _write(tmp_path, bytes(damaged))
            header, got, valid_end, torn = scan_wal(path)
            # A flip never *extends* the log and never corrupts a record:
            # whatever scans out is a byte-exact prefix of the original.
            assert torn, f"flip at {pos} went undetected"
            assert header is not None
            # The flipped byte sits in the second-to-last or last frame;
            # scanning must stop at (or before) the damaged frame's start.
            frame_start = max(b for b in boundaries if b <= pos)
            assert valid_end <= frame_start, f"flip at {pos}"
            k = _whole_mutation_frames_before(boundaries, valid_end)
            assert got == records[:k], f"flip at {pos} yielded a partial record"
            with pytest.raises(WalCorruptionError):
                scan_wal(path, strict=True)

    def test_flip_in_header_frame_unreplayable_but_typed(
        self, pristine, tmp_path
    ):
        data, boundaries, records = pristine
        for pos in range(0, boundaries[1]):
            damaged = bytearray(data)
            damaged[pos] ^= 0x10
            path = _write(tmp_path, bytes(damaged))
            header, got, valid_end, torn = scan_wal(path)
            if header is None:
                # The header frame itself died: nothing replays.
                assert got == [] and valid_end == 0 and torn
            else:
                # The flip landed in the header *body* without breaking
                # framing is impossible (CRC covers the body) — so a
                # surviving header means the flip broke a later check.
                pytest.fail(f"flip at {pos} left a valid header")

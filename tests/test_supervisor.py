"""The self-healing control loop's state machine, driven by a fake clock.

Every transition of ``healthy → suspected → promoted → rejoined`` is
pinned here with injected time — no wall-clock sleeps: the grace period
absorbing a flap, automatic promotion after grace, the cooldown
suppressing a promotion storm on a flapping shard, single-flight
promotion, and the zombie ex-primary re-admitted with a byte-identical
WAL prefix.  The thread-safety of :class:`Monitor` (beats from worker
threads racing ``check`` from the supervisor thread) gets its own
hammer, and the event journal its torn-tail round-trip.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.cluster import ShardedIndex
from repro.net import NetClient, serve_in_thread
from repro.obs import instruments
from repro.replication import ReplicatedIndex, replicate
from repro.replication.monitor import Monitor
from repro.service import QueryEngine
from repro.supervisor import EventJournal, Supervisor, read_journal


class FakeClock:
    def __init__(self, now: float = 500.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def obs_enabled():
    obs.get_registry().reset()  # absolute-value asserts need a clean slate
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


def make_cluster(tmp_path, words, edit, clock, replicas=2, timeout=4.0):
    directory = str(tmp_path / "cluster")
    ShardedIndex.build(
        words[:200], edit, shards=2, num_pivots=3, seed=11
    ).save(directory)
    replicate(directory, edit, replicas=replicas, read_policy="round-robin")
    idx = ReplicatedIndex.open(
        directory, edit, wal_fsync=False,
        heartbeat_timeout=timeout, clock=clock,
    )
    return directory, idx


def beat_all(idx, skip=()):
    for sid, rset in idx._sets.items():
        for rid in rset.member_ids():
            if (sid, rid) not in skip:
                idx.monitor.beat(sid, rid)


class TestStateMachine:
    def test_healthy_cluster_ticks_are_noops(self, tmp_path, small_words, edit):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        try:
            actions = sup.tick()
            assert actions["promoted"] == []
            assert actions["rejoined"] == []
            assert actions["suppressed"] == []
            assert sup.ticks == 1
            assert sup.shard_state(0) == "healthy"
            assert idx.supervisor is sup
        finally:
            sup.close()
            idx.close()
        assert idx.supervisor is None

    def test_defaults_derive_from_heartbeat_timeout(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock, timeout=4.0)
        sup = Supervisor(idx, scrub_interval=None)
        try:
            assert sup.grace == 2.0
            assert sup.cooldown == 8.0
            assert sup.tick_interval == 1.0
        finally:
            sup.close()
            idx.close()

    def test_grace_absorbs_a_flap(self, tmp_path, small_words, edit):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        p0 = idx._sets[0].primary.replica_id
        try:
            idx.monitor.mark_down(0, p0)
            actions = sup.tick()
            assert actions["promoted"] == []
            assert sup.shard_state(0) == "suspected"
            # The primary comes back inside the grace window: no promotion.
            clock.now += 1.0
            idx.monitor.mark_up(0, p0)
            actions = sup.tick()
            assert actions["promoted"] == []
            assert sup.shard_state(0) == "healthy"
            assert idx._sets[0].primary.replica_id == p0
            events = [e["event"] for e in sup.events(20)]
            assert "primary-suspected" in events
            assert "primary-recovered" in events
            assert "promoted" not in events
        finally:
            sup.close()
            idx.close()

    def test_automatic_failover_after_grace(
        self, tmp_path, small_words, edit, obs_enabled
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        p0 = idx._sets[0].primary.replica_id
        try:
            idx.monitor.mark_down(0, p0)
            assert sup.tick()["promoted"] == []  # suspected, inside grace
            clock.now += 1.0
            assert sup.tick()["promoted"] == []  # 1.0 < grace 2.0
            clock.now += 1.5
            beat_all(idx)
            actions = sup.tick()
            assert actions["promoted"] == [0]
            assert idx._sets[0].primary.replica_id != p0
            # Detect-to-promote stayed within two heartbeat timeouts.
            promoted = [
                e for e in sup.events(20) if e["event"] == "promoted"
            ][-1]
            assert promoted["detail"]["mttr"] == pytest.approx(2.5)
            assert promoted["detail"]["mttr"] <= 2 * idx.monitor.timeout
            assert sup.promotions == 1
            assert (
                instruments.supervisor().promotions.labels(shard="0").value
                == 1
            )
            # Inside the cooldown window the state label says so.
            assert sup.shard_state(0) == "cooldown"
        finally:
            sup.close()
            idx.close()

    def test_cooldown_suppresses_promotion_storm(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        rset = idx._sets[0]
        p0 = rset.primary.replica_id
        try:
            idx.monitor.mark_down(0, p0)
            sup.tick()
            clock.now += 3.0  # past grace
            beat_all(idx)
            assert sup.tick()["promoted"] == [0]
            promoted_at = clock.now
            p1 = rset.primary.replica_id
            sup.tick()  # repair pass re-admits the stale survivor
            # The new primary flaps straight back down: inside the
            # cooldown window every tick suppresses, no matter how many.
            idx.monitor.mark_down(0, p1)
            sup.tick()  # suspected again
            clock.now += 2.0  # past grace, still deep inside the cooldown
            for _ in range(3):
                clock.now += 1.0
                beat_all(idx)
                actions = sup.tick()
                assert clock.now - promoted_at < sup.cooldown
                assert actions["promoted"] == []
                assert actions["suppressed"] == [0]
            assert sup.promotions == 1
            suppressed = [
                e for e in sup.events(50)
                if e["event"] == "promotion-suppressed"
            ]
            assert len(suppressed) == 1  # journalled once, not per tick
            # Once the cooldown expires the shard may promote again.
            clock.now = promoted_at + sup.cooldown + 0.5
            beat_all(idx)
            actions = sup.tick()
            assert actions["promoted"] == [0]
            assert sup.promotions == 2
            assert rset.primary.replica_id not in (p0, p1)
        finally:
            sup.close()
            idx.close()

    def test_single_flight_promotion(
        self, tmp_path, small_words, edit, monkeypatch
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        p0 = idx._sets[0].primary.replica_id
        calls: list[int] = []
        orig = idx.failover

        def reentrant(sid):
            calls.append(sid)
            if len(calls) == 1:
                # Re-enter the loop mid-promotion (the RLock admits the
                # same thread): the in-flight flag must block a second
                # failover attempt.
                inner = sup.tick()
                assert inner["promoted"] == []
            return orig(sid)

        monkeypatch.setattr(idx, "failover", reentrant)
        try:
            idx.monitor.mark_down(0, p0)
            sup.tick()
            clock.now += 3.0
            beat_all(idx)
            assert sup.tick()["promoted"] == [0]
            assert calls == [0]
        finally:
            sup.close()
            idx.close()

    def test_promotion_blocked_without_followers(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock, replicas=1)
        sup = Supervisor(idx, scrub_interval=None)
        rset = idx._sets[0]
        try:
            for rid in rset.member_ids():
                idx.monitor.mark_down(0, rid)  # nobody left to promote
            sup.tick()
            clock.now += 3.0
            actions = sup.tick()
            assert actions["promoted"] == []
            assert sup.shard_state(0) == "suspected"
            events = [e["event"] for e in sup.events(20)]
            assert "promotion-blocked" in events
        finally:
            sup.close()
            idx.close()


class TestZombieRejoin:
    def test_ex_primary_rejoins_with_byte_identical_wal(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        rset = idx._sets[0]
        p0 = rset.primary.replica_id
        sup = Supervisor(idx, scrub_interval=None)
        try:
            idx.monitor.mark_down(0, p0)
            sup.tick()
            clock.now += 3.0
            beat_all(idx)
            assert sup.tick()["promoted"] == [0]
            # The surviving follower is stranded on the old generation;
            # the next repair pass re-admits it too.
            rejoined = sup.tick()["rejoined"]
            assert (0, [r.replica_id for r in rset.followers
                        if r.replica_id != p0][0]) in rejoined
            # New-generation writes land while the zombie is still down.
            for word in small_words[200:230]:
                idx.insert(word)
            # The zombie returns: healthy but generation-fenced — the
            # repair pass demotes it through the snapshot resync path.
            idx.monitor.mark_up(0, p0)
            actions = sup.tick()
            assert (0, p0) in actions["rejoined"]
            assert sup.rejoins >= 2
            zombie = next(
                r for r in rset.followers if r.replica_id == p0
            )
            assert rset.healthy(p0)
            assert rset.lag(p0) == 0
            # The WAL invariant holds byte for byte on disk.
            pwal = rset.primary.tree.wal
            committed = zombie.wal.size_in_bytes
            assert zombie.wal.header.base_generation == \
                pwal.header.base_generation
            with open(zombie.wal.path, "rb") as fh:
                zbytes = fh.read(committed)
            with open(pwal.path, "rb") as fh:
                pbytes = fh.read(committed)
            assert zbytes == pbytes
            events = [e["event"] for e in sup.events(50)]
            assert "rejoined" in events
            assert idx.verify().ok
        finally:
            sup.close()
            idx.close()

    def test_externally_downed_member_is_left_alone(
        self, tmp_path, small_words, edit
    ):
        """A member an operator (or chaos) killed is not resurrected."""
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        rset = idx._sets[0]
        rid = rset.followers[0].replica_id
        sup = Supervisor(idx, scrub_interval=None)
        try:
            idx.monitor.mark_down(0, rid)
            for _ in range(3):
                clock.now += 1.0
                beat_all(idx, skip={(0, rid)})
                actions = sup.tick()
                assert actions["rejoined"] == []
                assert actions["repaired"] == []
            assert not rset.healthy(rid)
            assert idx.monitor.forced_down(0, rid)
        finally:
            sup.close()
            idx.close()


class TestMonitorThreadSafety:
    def test_concurrent_beats_checks_and_kill_switch(self):
        """Regression: worker threads beat members while the supervisor
        thread probes check() — the maps must never be observed
        mid-mutation (this raced before the monitor grew its lock)."""
        mon = Monitor(timeout=60.0)
        ids = list(range(4))
        for rid in ids:
            mon.register(0, rid)
        errors: list[BaseException] = []

        def beater(rid: int) -> None:
            try:
                for _ in range(2000):
                    mon.beat(0, rid)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def checker() -> None:
            try:
                for _ in range(2000):
                    mon.check(0, ids)
                    mon.healthy(0, 1)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def flipper() -> None:
            try:
                for _ in range(2000):
                    mon.mark_down(0, 2)
                    mon.forced_down(0, 2)
                    mon.mark_up(0, 2)
                    mon.register(1, 9)
                    mon.forget(1, 9)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = (
            [threading.Thread(target=beater, args=(r,)) for r in ids]
            + [threading.Thread(target=checker) for _ in range(2)]
            + [threading.Thread(target=flipper)]
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors, errors
        assert all(mon.healthy(0, r) for r in (0, 1, 3))
        assert mon.healthy(0, 2)  # the last flip was mark_up


class TestEventJournal:
    def test_file_round_trip_and_tail(self, tmp_path):
        clock = FakeClock(100.0)
        path = str(tmp_path / "events.jsonl")
        journal = EventJournal(path=path, limit=3, clock=clock)
        for i in range(5):
            clock.now += 1.0
            journal.record("tick", shard=i, detail={"n": i})
        journal.close()
        # The deque is bounded; the file holds everything.
        assert len(journal) == 3
        assert [e["shard"] for e in journal.tail(2)] == [3, 4]
        events = read_journal(path)
        assert len(events) == 5
        assert events[0]["ts"] == pytest.approx(101.0)
        assert events[-1]["detail"] == {"n": 4}
        assert read_journal(path, limit=2) == events[-2:]

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        journal = EventJournal(path=path, clock=FakeClock())
        journal.record("a")
        journal.record("b")
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"event": "torn", "ts"')  # crash mid-append
        events = read_journal(path)
        assert [e["event"] for e in events] == ["a", "b"]
        assert read_journal(str(tmp_path / "missing.jsonl")) == []

    def test_memory_only_journal(self):
        journal = EventJournal(clock=FakeClock())
        journal.record("x", replica=7)
        assert journal.tail()[0]["replica"] == 7
        journal.close()


class TestSurfaces:
    def test_status_and_health_summary_shapes(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        try:
            sup.tick()
            status = sup.status()
            assert status["running"] is False
            assert status["ticks"] == 1
            assert set(status["shards"]) == {0, 1}
            assert status["shards"][0]["state"] == "healthy"
            assert status["shards"][0]["quarantined"] == []
            summary = sup.health_summary()
            assert summary["shards"] == {"0": "healthy", "1": "healthy"}
            json.dumps(summary)  # wire-safe
        finally:
            sup.close()
            idx.close()

    def test_net_health_reports_replication_and_supervisor(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None)
        engine = QueryEngine(idx, workers=2).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        try:
            with NetClient("127.0.0.1", handle.port) as client:
                health = client.health()
            assert health["status"] == "ok"
            rep = health["replication"]
            assert set(rep) == {"0", "1"}
            assert rep["0"]["primary_healthy"] is True
            assert rep["0"]["healthy_members"] == rep["0"]["members"] == 3
            assert rep["0"]["max_lag_bytes"] == 0
            assert rep["0"]["degraded"] is False
            assert health["supervisor"]["shards"]["0"] == "healthy"
            assert health["supervisor"]["running"] is False
        finally:
            handle.stop(2.0)
            engine.stop()
            sup.close()
            idx.close()

    def test_background_thread_lifecycle(self, tmp_path, small_words, edit):
        import time as _time

        clock = FakeClock()
        _, idx = make_cluster(tmp_path, small_words, edit, clock)
        sup = Supervisor(idx, scrub_interval=None, tick_interval=0.01)
        try:
            sup.start()
            assert sup.running
            sup.start()  # idempotent
            deadline = _time.monotonic() + 10.0
            while sup.ticks == 0 and _time.monotonic() < deadline:
                _time.sleep(0.01)
            assert sup.ticks >= 1
            sup.stop()
            assert not sup.running
            events = [e["event"] for e in sup.events(50)]
            assert "started" in events and "stopped" in events
        finally:
            sup.close()
            idx.close()

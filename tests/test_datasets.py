"""Tests for the dataset generators and registry."""

import numpy as np
import pytest

from repro.core.pivots import intrinsic_dimensionality
from repro.datasets import (
    DATASETS,
    generate_color,
    generate_dna,
    generate_signature,
    generate_synthetic,
    generate_words,
    load_dataset,
)


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [
            generate_words,
            generate_color,
            generate_dna,
            generate_signature,
            generate_synthetic,
        ],
    )
    def test_cardinality_and_determinism(self, generator):
        a = generator(150, seed=5)
        b = generator(150, seed=5)
        c = generator(150, seed=6)
        assert len(a) == 150
        if isinstance(a[0], np.ndarray):
            assert all(np.array_equal(x, y) for x, y in zip(a, b))
            assert any(not np.array_equal(x, y) for x, y in zip(a, c))
        else:
            assert a == b
            assert a != c

    def test_words_are_distinct(self):
        words = generate_words(500, seed=1)
        assert len(set(words)) == 500
        assert all(w.isalpha() for w in words)

    def test_dna_alphabet_and_length(self):
        reads = generate_dna(100, seed=1)
        assert all(len(r) == 108 for r in reads)
        assert all(set(r) <= set("ACGT") for r in reads)
        assert len(set(reads)) == 100

    def test_color_histograms_normalized(self):
        vectors = generate_color(100, seed=1)
        for v in vectors:
            assert v.shape == (16,)
            assert v.min() >= 0.0
            assert v.sum() == pytest.approx(1.0)

    def test_signatures_binary(self):
        sigs = generate_signature(100, seed=1)
        for s in sigs:
            assert s.shape == (64,)
            assert set(np.unique(s)) <= {0, 1}

    def test_synthetic_in_unit_cube(self):
        data = generate_synthetic(100, seed=1)
        for v in data:
            assert v.shape == (20,)
            assert v.min() >= 0.0 and v.max() <= 1.0


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_load_dataset(self, name):
        ds = load_dataset(name, size=120, num_queries=10)
        assert len(ds.objects) == 120
        assert len(ds.queries) == 10
        assert ds.queries == ds.objects[:10]  # the paper's protocol
        assert ds.d_plus > 0
        d = ds.metric(ds.objects[0], ds.objects[1])
        assert d >= 0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("corel")

    @pytest.mark.parametrize(
        "name,band",
        [
            ("words", (3.0, 7.5)),
            ("color", (1.0, 4.5)),
            ("dna", (4.0, 10.0)),
            ("signature", (10.0, 22.0)),
            ("synthetic", (3.0, 8.0)),
        ],
    )
    def test_intrinsic_dimensionality_bands(self, name, band):
        """Each stand-in must stay in the neighbourhood of its paper value
        (Table 2): words 4.9, color 2.9, dna 6.9, signature 14.8,
        synthetic 4.76."""
        ds = load_dataset(name, size=500)
        rho = intrinsic_dimensionality(ds.objects, ds.metric, num_pairs=700)
        lo, hi = band
        assert lo <= rho <= hi, f"{name}: rho={rho:.2f} outside {band}"

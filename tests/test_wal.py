"""Write-ahead log: framing, torn tails, replay, checkpointing, auditing.

The WAL contract under test: every mutation is durable in the log before
any in-memory structure changes, so the on-disk state is always *base
generation + logged mutations*; replay is deterministic (recorded ids,
recorded SFC keys, zero distance computations); a checkpoint folds the log
into a fresh generation behind the same atomic catalog rename that PR 1
introduced, and a log left stale by a checkpoint crash is ignored rather
than double-applied.
"""

from __future__ import annotations

import os

import pytest

from repro.core.persist import load_tree, open_tree, save_tree
from repro.core.spbtree import SPBTree
from repro.core.verify import verify_tree
from repro.distance import EditDistance
from repro.storage.wal import (
    OP_DELETE,
    OP_INSERT,
    WAL_FILE,
    WriteAheadLog,
    scan_wal,
)


@pytest.fixture()
def words(small_words):
    return small_words[:120]


@pytest.fixture()
def saved_dir(tmp_path, words, edit):
    """A saved index directory (generation 1) over 120 words."""
    tree = SPBTree.build(words, edit, num_pivots=3, seed=7)
    directory = str(tmp_path / "idx")
    generation = save_tree(tree, directory)
    assert generation == 1
    return directory


def _live(tree) -> list[str]:
    return sorted(obj for _, _, obj in tree.raf.scan())


class TestLogFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / WAL_FILE)
        with WriteAheadLog(path) as wal:
            wal.start(3, 100, 100)
            wal.append_insert(100, 0xDEADBEEF, b"object-bytes")
            wal.append_delete(7, b"victim")
            assert (wal.insert_count, wal.delete_count) == (1, 1)
        header, records, valid_end, torn = scan_wal(path)
        assert header.base_generation == 3
        assert header.base_object_count == 100
        assert header.base_next_id == 100
        assert not torn
        assert valid_end == os.path.getsize(path)
        assert [(r.op, r.obj_id, r.key, r.payload) for r in records] == [
            (OP_INSERT, 100, 0xDEADBEEF, b"object-bytes"),
            (OP_DELETE, -1, 7, b"victim"),
        ]

    def test_append_requires_header(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / WAL_FILE))
        with pytest.raises(ValueError, match="no header"):
            wal.append_insert(0, 1, b"x")
        wal.start(0, 0, 0)
        with pytest.raises(ValueError, match="already has a header"):
            wal.start(0, 0, 0)
        wal.close()

    def test_torn_tail_dropped_and_appendable(self, tmp_path):
        path = str(tmp_path / WAL_FILE)
        with WriteAheadLog(path) as wal:
            wal.start(1, 10, 10)
            wal.append_insert(10, 42, b"kept")
            wal.append_insert(11, 43, b"will-be-torn")
        intact = os.path.getsize(path)
        # Tear the last frame mid-payload, as a crash mid-append would.
        with open(path, "r+b") as fh:
            fh.truncate(intact - 5)
        header, records, valid_end, torn = scan_wal(path)
        assert torn and header is not None
        assert [r.payload for r in records] == [b"kept"]
        # Reopening truncates the tail so new appends stay replayable.
        with WriteAheadLog(path) as wal:
            assert wal.torn_tail
            assert wal.record_count == 1
            wal.append_insert(11, 43, b"retried")
        header, records, _, torn = scan_wal(path)
        assert not torn
        assert [r.payload for r in records] == [b"kept", b"retried"]

    def test_corrupt_byte_stops_scan_cleanly(self, tmp_path):
        path = str(tmp_path / WAL_FILE)
        with WriteAheadLog(path) as wal:
            wal.start(1, 0, 0)
            wal.append_insert(0, 5, b"aaaa")
            first_two = wal.size_in_bytes
            wal.append_insert(1, 6, b"bbbb")
        with open(path, "r+b") as fh:
            fh.seek(first_two + 10)
            fh.write(b"\xff")
        header, records, valid_end, torn = scan_wal(path)
        assert header is not None and torn
        assert [r.payload for r in records] == [b"aaaa"]
        assert valid_end == first_two

    def test_truncate_rebinds_to_new_generation(self, tmp_path):
        path = str(tmp_path / WAL_FILE)
        wal = WriteAheadLog(path)
        wal.start(1, 50, 50)
        wal.append_insert(50, 9, b"folded")
        wal.truncate(2, 51, 51)
        assert wal.header.base_generation == 2
        assert wal.record_count == 0
        wal.append_delete(3, b"fresh")
        wal.close()
        header, records, _, torn = scan_wal(path)
        assert header.base_generation == 2 and not torn
        assert [r.op for r in records] == [OP_DELETE]

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan_wal(str(tmp_path / "absent.log")) == (None, [], 0, False)


class TestReplay:
    def test_load_replays_live_wal(self, saved_dir, edit, words):
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        tree.insert("syzygy")
        assert tree.delete(words[5])
        expected = _live(tree)
        tree.wal.close()
        # A reopen (the crash-recovery path) replays the log over the base.
        recovered = load_tree(saved_dir, edit)
        assert _live(recovered) == expected
        assert recovered.object_count == tree.object_count
        assert recovered._next_id == tree._next_id
        assert verify_tree(recovered).ok
        # Replay costs zero distance computations (keys are recorded).
        assert recovered.distance_computations == 0
        # Queries agree with the mutated tree.
        assert sorted(recovered.range_query("zzyzx", 0)) == ["zzyzx"]
        assert recovered.range_query(words[5], 0) == []

    def test_replay_can_be_disabled(self, saved_dir, edit):
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        base_count = tree.object_count - 1
        tree.wal.close()
        base_only = load_tree(saved_dir, edit, replay_wal=False)
        assert base_only.object_count == base_count
        assert base_only.range_query("zzyzx", 0) == []

    def test_stale_wal_is_ignored_and_reset(self, saved_dir, edit):
        """A checkpoint that crashed after the catalog rename but before the
        WAL truncation leaves a stale log; replaying it would double-apply."""
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        expected = _live(tree)
        # Simulate the crash window: commit generation 2, keep the old log.
        save_tree(tree, saved_dir)
        tree.wal.close()
        loaded = load_tree(saved_dir, edit)  # must NOT replay the stale log
        assert _live(loaded) == expected
        assert loaded.object_count == tree.object_count
        # begin_logging rebinds the stale log instead of double-applying.
        wal = WriteAheadLog(os.path.join(saved_dir, WAL_FILE))
        loaded.begin_logging(wal)
        assert wal.header.base_generation == loaded._generation
        assert wal.record_count == 0
        wal.close()

    def test_future_generation_wal_refused(self, saved_dir, edit):
        wal = WriteAheadLog(os.path.join(saved_dir, WAL_FILE))
        wal.start(99, 120, 120)
        wal.close()
        tree = load_tree(saved_dir, edit, replay_wal=False)
        wal = WriteAheadLog(os.path.join(saved_dir, WAL_FILE))
        with pytest.raises(ValueError, match="newer"):
            tree.begin_logging(wal)
        wal.close()


class TestCheckpoint:
    def test_checkpoint_reload_equals_memory_exactly(self, saved_dir, edit, words):
        tree = open_tree(saved_dir, edit)
        for word in ("zzyzx", "syzygy", "qwerty"):
            tree.insert(word)
        assert tree.delete(words[0])
        assert tree.delete("qwerty")
        generation = tree.checkpoint()
        assert generation == 2
        assert tree.wal.record_count == 0
        assert tree.wal.header.base_generation == 2
        tree.wal.close()
        reloaded = load_tree(saved_dir, edit)
        assert _live(reloaded) == _live(tree)
        assert reloaded.object_count == tree.object_count
        assert reloaded._next_id == tree._next_id
        assert reloaded._generation == 2
        assert sorted(reloaded.btree.items()) == sorted(tree.btree.items())
        assert verify_tree(reloaded).ok

    def test_mutate_checkpoint_mutate_cycle(self, saved_dir, edit):
        tree = open_tree(saved_dir, edit)
        tree.insert("alpha")
        tree.checkpoint()
        tree.insert("beta")  # logged against generation 2
        assert tree.wal.record_count == 1
        expected = _live(tree)
        tree.wal.close()
        recovered = load_tree(saved_dir, edit)
        assert _live(recovered) == expected


class TestVerifyWalAgreement:
    def test_clean_tree_with_wal_verifies(self, saved_dir, edit, words):
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        assert tree.delete(words[2])
        report = verify_tree(tree)
        assert report.ok, report.errors
        tree.wal.close()

    def test_unapplied_log_record_is_detected(self, saved_dir, edit):
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        # Log a mutation without applying it — the tree and its WAL now
        # disagree, which is exactly the corruption verify must surface.
        payload = tree.raf.serializer.serialize("ghost")
        tree.wal.append_insert(tree._next_id, 12345, payload)
        report = verify_tree(tree)
        assert not report.ok
        assert any("WAL" in err for err in report.errors)
        tree.wal.close()

    def test_lost_update_is_detected(self, saved_dir, edit):
        tree = open_tree(saved_dir, edit)
        tree.insert("zzyzx")
        # Wind back the in-memory apply (a lost update): counts disagree.
        entry = tree._find_live_entry(
            tree.curve.encode(tree.space.grid("zzyzx")),
            tree.raf.serializer.serialize("zzyzx"),
        )
        tree.btree.delete(entry.key, entry.ptr)
        tree.raf.mark_deleted(entry.ptr)
        tree.object_count -= 1
        report = verify_tree(tree)
        assert not report.ok
        tree.wal.close()


class TestBatchFlush:
    """Satellite: WAL-backed inserts batch partial-page flushes."""

    def test_wal_inserts_write_fewer_pages(self, saved_dir, tmp_path, edit):
        import shutil

        plain_dir = str(tmp_path / "plain")
        shutil.copytree(saved_dir, plain_dir)
        walled = open_tree(saved_dir, edit)
        plain = load_tree(plain_dir, edit)
        new_words = [f"zz{chr(97 + i)}q" for i in range(10)]

        before_w = walled.raf.pagefile.counter.total
        before_p = plain.raf.pagefile.counter.total
        for word in new_words:
            walled.insert(word)
            plain.insert(word)
        writes_walled = walled.raf.pagefile.counter.total - before_w
        writes_plain = plain.raf.pagefile.counter.total - before_p
        # Write-through flushes the partial tail page on every insert; the
        # WAL path defers, so it touches strictly fewer pages.
        assert writes_plain >= len(new_words)
        assert writes_walled < writes_plain

        # PA accounting stays correct: the deferred tail is still readable,
        # an explicit flush persists it, and both trees agree exactly.
        assert _live(walled) == _live(plain)
        assert walled.object_count == plain.object_count
        walled.raf.flush()
        assert walled.raf._tail_flushed == len(walled.raf._tail)
        assert _live(walled) == _live(plain)
        assert verify_tree(walled).ok
        walled.wal.close()

    def test_mixed_flush_modes_read_correctly(self, tmp_path):
        """A partially-flushed tail plus unflushed batch appends must read
        back exactly (the _tail_flushed bookkeeping)."""
        from repro.storage.raf import RandomAccessFile
        from repro.storage.serializers import StringSerializer

        raf = RandomAccessFile(StringSerializer())
        offsets = [raf.append(0, "write-through")]  # flushes partial tail
        offsets.append(raf.append(1, "batched-one", flush=False))
        offsets.append(raf.append(2, "batched-two", flush=False))
        got = [raf.read(off) for off in offsets]
        assert got == [(0, "write-through"), (1, "batched-one"), (2, "batched-two")]
        raf.flush()
        assert [raf.read(off) for off in offsets] == got


class TestReservoirCompensation:
    """Satellite: delete compensates the cost-model grid sample."""

    def test_insert_delete_returns_sample_population(self, words, edit):
        tree = SPBTree.build(words, edit, num_pivots=3, seed=7)
        base_population = tree._sampled_from
        base_sample = list(tree.grid_sample)
        tree.insert("zzyzx")
        grid = tree.space.grid("zzyzx")
        assert tree._sampled_from == base_population + 1
        assert tree.delete("zzyzx")
        assert tree._sampled_from == base_population
        # The deleted object's grid point is not over-represented.
        assert tree.grid_sample.count(grid) <= base_sample.count(grid)

    def test_sample_never_negative_under_churn(self, words, edit):
        tree = SPBTree.build(words[:40], edit, num_pivots=3, seed=7)
        for word in list(words[:40]):
            assert tree.delete(word)
        assert tree._sampled_from >= 0
        assert tree.object_count == 0
        tree.insert("fresh")
        assert tree._sampled_from >= 1
        assert tree.range_query("fresh", 0) == ["fresh"]

"""Anti-entropy scrub: divergence detection, quarantine, rebuild.

The invariant under audit: a follower's durable WAL is a byte-identical
prefix of the primary's, and page checksums hold at rest.  These tests
violate both on *disk* — flip a WAL byte, truncate a committed tail,
rot a page behind the checksum — and prove the scrubber detects each,
quarantines the replica **before it can serve a divergent read**,
rebuilds it by snapshot resync, and reconciles every observability
counter exactly.  A corrupt primary takes the other path: quarantine,
fast-tracked failover, rebuild as a follower.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.cluster import ShardedIndex
from repro.obs import instruments
from repro.replication import ReplicatedIndex, replicate
from repro.supervisor import Supervisor
from repro.supervisor.scrub import compare_wal_prefix, spot_check_pages


class FakeClock:
    def __init__(self, now: float = 500.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def obs_enabled():
    obs.get_registry().reset()  # absolute-value asserts need a clean slate
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


@pytest.fixture()
def cluster(tmp_path, small_words, edit):
    """A checksummed, replicated 2-shard cluster with WAL traffic on
    every shard, plus a supervisor with background scrub disabled (the
    tests drive scrubs explicitly)."""
    clock = FakeClock()
    directory = str(tmp_path / "cluster")
    ShardedIndex.build(
        small_words[:200], edit, shards=2, num_pivots=3, seed=11,
        checksums=True,
    ).save(directory)
    replicate(directory, edit, replicas=2, read_policy="round-robin")
    idx = ReplicatedIndex.open(
        directory, edit, wal_fsync=False, heartbeat_timeout=4.0, clock=clock
    )
    for word in small_words[200:240]:  # WAL bytes on both shards
        idx.insert(word)
    sup = Supervisor(idx, scrub_interval=None)
    yield idx, sup, clock
    sup.close()
    idx.close()


def flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        b = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([b[0] ^ 0xFF]))


class TestCleanScrub:
    def test_clean_cluster_scrubs_clean(self, cluster):
        idx, sup, _ = cluster
        report = sup.scrub()
        assert report.clean and report.ok
        assert sorted(report.shards) == [0, 1]
        assert report.wal_bytes_compared > 0
        assert report.pages_checked > 0
        assert "clean" in report.summary()
        assert sup.scrub_passes == 1

    def test_rotating_page_cursor_covers_the_store(self, cluster):
        idx, sup, _ = cluster
        rep = idx._sets[0].followers[0]
        total = rep.tree.btree.pagefile.num_pages
        if rep.tree.raf is not None:
            total += rep.tree.raf.pagefile.num_pages
        seen = 0
        cursor = 0
        while seen < total:
            bad, checked, cursor = spot_check_pages(rep.tree, 3, cursor)
            assert bad == []
            assert checked == min(3, total)
            seen += checked
        assert cursor == seen % total

    def test_generation_stale_follower_is_not_divergence(self, cluster):
        """A fenced ex-primary is a rejoin concern, not a scrub finding."""
        idx, sup, clock = cluster
        rset = idx._sets[0]
        p0 = rset.primary.replica_id
        idx.monitor.mark_down(0, p0)
        sup.tick()
        clock.now += 3.0
        assert sup.tick()["promoted"] == [0]
        idx.monitor.mark_up(0, p0)
        zombie = next(r for r in rset.followers if r.replica_id == p0)
        problem, compared = compare_wal_prefix(rset.primary.tree.wal, zombie)
        assert problem is None and compared == 0


class TestFollowerRepair:
    def test_wal_divergence_detected_and_repaired(self, cluster, obs_enabled):
        idx, sup, _ = cluster
        rset = idx._sets[0]
        rep = rset.followers[0]
        rid = rep.replica_id
        committed = rep.wal.size_in_bytes
        assert committed > 0
        flip_byte(rep.wal.path, committed // 2)

        report = sup.scrub(shard_id=0)
        assert not report.clean and report.ok
        [finding] = report.findings
        assert finding.kind == "wal-diverged"
        assert finding.replica == rid
        assert finding.repaired
        assert f"offset {committed // 2}" in finding.detail
        # Rebuilt and back in rotation with a sound prefix.
        assert rset.healthy(rid)
        assert sup.quarantined(0) == []
        fresh = next(r for r in rset.followers if r.replica_id == rid)
        problem, compared = compare_wal_prefix(rset.primary.tree.wal, fresh)
        assert problem is None and compared > 0
        # Exact counter reconciliation, obs and plain tallies agreeing.
        inst = instruments.supervisor()
        assert inst.divergences.labels(kind="wal-diverged").value == 1
        assert inst.quarantines.labels(shard="0").value == 1
        assert inst.repairs.value == 1 == sup.repairs
        assert sup.quarantines == 1
        events = [e["event"] for e in sup.events(20)]
        assert events[-4:] == [
            "divergence", "quarantined", "rebuilt", "scrub-pass",
        ]

    def test_wal_truncation_detected_and_repaired(self, cluster):
        idx, sup, _ = cluster
        rep = idx._sets[0].followers[1]
        committed = rep.wal.size_in_bytes
        os.truncate(rep.wal.path, committed - 5)

        report = sup.scrub(shard_id=0)
        [finding] = report.findings
        assert finding.kind == "wal-truncated"
        assert finding.repaired
        assert f"{committed - 5} bytes" in finding.detail
        assert os.path.getsize(
            next(
                r for r in idx._sets[0].followers
                if r.replica_id == finding.replica
            ).wal.path
        ) >= committed

    def test_page_rot_detected_and_repaired(self, cluster):
        idx, sup, _ = cluster
        rep = idx._sets[1].followers[0]
        pf = rep.tree.btree.pagefile
        pf._store_raw(0, b"\xde\xad" * (pf.page_size // 2))

        report = sup.scrub(shard_id=1)
        [finding] = report.findings
        assert finding.kind == "page"
        assert "btree page 0" in finding.detail
        assert finding.repaired
        assert idx._sets[1].healthy(finding.replica)
        assert idx.verify().ok

    def test_quarantine_excludes_reads_before_rebuild(
        self, cluster, monkeypatch
    ):
        """Mid-quarantine — after detection, before the rebuild lands —
        the read router must never choose the divergent member."""
        idx, sup, _ = cluster
        rset = idx._sets[0]
        rep = rset.followers[0]
        rid = rep.replica_id
        flip_byte(rep.wal.path, rep.wal.size_in_bytes - 1)
        chosen_during_quarantine: list[int] = []
        orig = rset.resync

        def observing_resync(r):
            assert not rset.healthy(rid)
            assert rid in sup.quarantined(0)
            for _ in range(6):  # round-robin never lands on the corpse
                chosen_during_quarantine.append(
                    idx._selector.choose(
                        0, rset.member_ids(), rset.healthy, rset.lag
                    )
                )
            return orig(r)

        monkeypatch.setattr(rset, "resync", observing_resync)
        report = sup.scrub(shard_id=0)
        assert report.ok
        assert chosen_during_quarantine  # the hook really ran
        assert rid not in chosen_during_quarantine
        assert rset.healthy(rid)  # and it is back afterwards

    def test_deep_scrub_runs_structural_verify(self, cluster):
        idx, sup, _ = cluster
        report = sup.scrub(deep=True)
        assert report.clean
        assert report.pages_checked > 0


class TestPrimaryCorruption:
    def test_corrupt_primary_fast_tracks_failover_then_rebuild(
        self, cluster, obs_enabled
    ):
        idx, sup, clock = cluster
        rset = idx._sets[0]
        p0 = rset.primary.replica_id
        pf = rset.primary.tree.btree.pagefile
        pf._store_raw(0, b"\xbe\xef" * (pf.page_size // 2))

        report = sup.scrub(shard_id=0)
        # Unrepairable in-pass: the primary cannot be rebuilt from itself.
        [finding] = report.unrepaired()
        assert finding.kind == "primary-page"
        assert finding.replica == p0
        assert sup.shard_state(0) == "quarantine"
        assert p0 in sup.quarantined(0)
        assert not rset.healthy(p0)
        # Fast track: the next tick promotes without waiting out the
        # grace period (no clock advance at all)...
        actions = sup.tick()
        assert actions["promoted"] == [0]
        assert rset.primary.replica_id != p0
        # ...and the one after rebuilds the deposed primary as a follower
        # (plus re-admits the generation-stranded survivor).
        actions = sup.tick()
        assert (0, p0) in actions["repaired"]
        assert sup.quarantined(0) == []
        status = idx.replication_status()[0]
        assert all(m["healthy"] for m in status["members"])
        assert all(m["lag_bytes"] == 0 for m in status["members"])
        assert sup.promotions == 1
        assert sup.repairs == 1
        assert instruments.supervisor().promotions.labels(shard="0").value == 1
        assert idx.verify().ok

    def test_primary_wal_torn_tail_detected(self, cluster):
        idx, sup, _ = cluster
        rset = idx._sets[1]
        pwal = rset.primary.tree.wal
        with open(pwal.path, "ab") as fh:
            fh.truncate(pwal.size_in_bytes - 3)
        report = sup.scrub(shard_id=1)
        kinds = {f.kind for f in report.findings}
        assert "primary-wal" in kinds
        assert sup.shard_state(1) == "quarantine"


class TestRateLimitingAndRotation:
    def test_background_scrub_respects_interval_and_rotates(
        self, tmp_path, small_words, edit
    ):
        clock = FakeClock()
        directory = str(tmp_path / "cluster")
        ShardedIndex.build(
            small_words[:150], edit, shards=2, num_pivots=3, seed=12
        ).save(directory)
        replicate(directory, edit, replicas=1)
        idx = ReplicatedIndex.open(
            directory, edit, wal_fsync=False,
            heartbeat_timeout=4.0, clock=clock,
        )
        sup = Supervisor(idx, scrub_interval=10.0, scrub_pages=4)
        try:
            assert sup.tick()["scrubbed"] == 0  # first tick always scrubs
            assert sup.tick()["scrubbed"] is None  # interval not elapsed
            clock.now += 9.9
            assert sup.tick()["scrubbed"] is None
            clock.now += 0.1
            assert sup.tick()["scrubbed"] == 1  # rotated to the next shard
            clock.now += 10.0
            assert sup.tick()["scrubbed"] == 0  # wrapped around
            assert sup.scrub_passes == 3
        finally:
            sup.close()
            idx.close()

    def test_page_budget_bounds_one_pass(self, cluster):
        idx, sup, _ = cluster
        report = sup.scrub(shard_id=0, pages=2)
        members = 3  # primary + two followers
        assert report.pages_checked <= 2 * members

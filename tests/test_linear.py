"""Tests for the brute-force oracle itself."""

import numpy as np
import pytest

from repro.baselines import LinearScan
from repro.distance import EditDistance, EuclideanDistance


class TestLinearScan:
    @pytest.fixture(scope="class")
    def scan(self):
        rng = np.random.default_rng(0)
        data = [rng.normal(size=3) for _ in range(100)]
        return LinearScan(data, EuclideanDistance()), data

    def test_range_query_definition(self, scan):
        oracle, data = scan
        metric = EuclideanDistance()
        q = data[0]
        result = oracle.range_query(q, 1.0)
        for o in result:
            assert metric(q, o) <= 1.0
        assert len(result) == sum(1 for o in data if metric(q, o) <= 1.0)

    def test_knn_sorted_and_exact(self, scan):
        oracle, data = scan
        metric = EuclideanDistance()
        q = np.zeros(3)
        res = oracle.knn_query(q, 10)
        dists = [d for d, _ in res]
        assert dists == sorted(dists)
        all_dists = sorted(metric(q, o) for o in data)
        assert dists == pytest.approx(all_dists[:10])

    def test_knn_with_ties(self):
        data = ["aa", "ab", "ba", "zz"]
        oracle = LinearScan(data, EditDistance())
        res = oracle.knn_query("aa", 3)
        assert res[0] == (0.0, "aa")
        assert {o for _, o in res[1:]} == {"ab", "ba"}

    def test_knn_invalid_k(self, scan):
        oracle, _ = scan
        with pytest.raises(ValueError):
            oracle.knn_query(np.zeros(3), 0)

    def test_join(self):
        left = ["cat", "dog"]
        right = ["cot", "dot", "bird"]
        oracle = LinearScan(left, EditDistance())
        pairs = oracle.join(right, 1)
        assert ("cat", "cot") in pairs
        assert ("dog", "dot") in pairs
        assert len(pairs) == 2  # only cat-cot and dog-dot are within 1

    def test_counts_distances(self, scan):
        oracle, data = scan
        oracle.distance.reset()
        oracle.range_query(data[0], 0.5)
        assert oracle.distance_computations == len(data)
        assert oracle.page_accesses == 0

"""Unit tests for the random access file."""

import numpy as np
import pytest

from repro.storage import RandomAccessFile, StringSerializer, VectorSerializer


def make_raf(page_size=64, cache=4):
    return RandomAccessFile(
        StringSerializer(), page_size=page_size, cache_pages=cache
    )


class TestRoundTrip:
    def test_bulk_append_and_read(self):
        raf = make_raf()
        offsets = [raf.append(i, f"word{i}", flush=False) for i in range(50)]
        raf.finalize()
        for i, off in enumerate(offsets):
            assert raf.read(off) == (i, f"word{i}")

    def test_variable_length_objects(self):
        raf = make_raf()
        words = ["a", "dictionary", "w" * 200, ""]
        offsets = [raf.append(i, w, flush=False) for i, w in enumerate(words)]
        raf.finalize()
        for i, off in enumerate(offsets):
            assert raf.read(off) == (i, words[i])

    def test_records_span_pages(self):
        raf = make_raf(page_size=32)
        big = "x" * 100  # spans 4 pages
        off = raf.append(0, big, flush=False)
        raf.finalize()
        assert raf.read(off) == (0, big)

    def test_read_during_bulk_load(self):
        # The B+-tree bulk loader may read back records before finalize.
        raf = make_raf()
        off = raf.append(0, "unflushed", flush=False)
        assert raf.read(off) == (0, "unflushed")

    def test_durable_append_after_finalize(self):
        raf = make_raf()
        off1 = raf.append(0, "first", flush=False)
        raf.finalize()
        off2 = raf.append(1, "second")  # durable mode
        assert raf.read(off1) == (0, "first")
        assert raf.read(off2) == (1, "second")

    def test_vectors(self):
        raf = RandomAccessFile(VectorSerializer(), page_size=64)
        v = np.array([1.0, 2.0, 3.0])
        off = raf.append(7, v)
        ident, out = raf.read(off)
        assert ident == 7
        assert np.array_equal(out, v)


class TestAccounting:
    def test_page_accesses_counted_per_page(self):
        raf = make_raf(page_size=32, cache=0)
        off = raf.append(0, "x" * 60, flush=False)  # ~3 pages
        raf.finalize()
        before = raf.page_accesses
        raf.read(off)
        assert raf.page_accesses - before >= 2

    def test_cache_avoids_duplicate_accesses(self):
        raf = make_raf(page_size=128, cache=8)
        offs = [raf.append(i, f"w{i}", flush=False) for i in range(10)]
        raf.finalize()
        raf.flush_cache()
        raf.read(offs[0])
        before = raf.page_accesses
        raf.read(offs[1])  # same page, cached
        assert raf.page_accesses == before

    def test_objects_per_page(self):
        raf = make_raf(page_size=64)
        for i in range(20):
            raf.append(i, f"w{i}", flush=False)
        raf.finalize()
        assert raf.objects_per_page == pytest.approx(
            20 / raf.num_pages
        )

    def test_bulk_mode_writes_each_page_once(self):
        raf = make_raf(page_size=64, cache=0)
        for i in range(40):
            raf.append(i, f"word-{i:04d}", flush=False)
        raf.finalize()
        assert raf.pagefile.counter.writes == raf.num_pages


class TestDeletion:
    def test_tombstones(self):
        raf = make_raf()
        offs = [raf.append(i, f"w{i}", flush=False) for i in range(5)]
        raf.finalize()
        raf.mark_deleted(offs[2])
        assert raf.is_deleted(offs[2])
        assert raf.object_count == 4
        live = [obj for _, _, obj in raf.scan()]
        assert live == ["w0", "w1", "w3", "w4"]


class TestScan:
    def test_scan_yields_offsets_ids_objects(self):
        raf = make_raf()
        expected = []
        for i in range(8):
            off = raf.append(i, f"w{i}", flush=False)
            expected.append((off, i, f"w{i}"))
        raf.finalize()
        assert list(raf.scan()) == expected

    def test_read_beyond_end_raises(self):
        raf = make_raf()
        raf.append(0, "only")
        with pytest.raises(IndexError):
            raf._read_bytes(10_000, 4)

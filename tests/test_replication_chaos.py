"""Replication chaos: kill the primary mid-workload and keep serving.

The honesty contract under fire: a writer streams inserts while readers
hammer scatter-gather queries; partway through, one shard's primary is
killed.  From that instant, writes routed to the dead shard are refused
(:class:`PrimaryDownError` — never silently dropped), context-carrying
reads keep answering from the survivors but say ``complete=False`` naming
the shard, and a failover restores full service with **zero acknowledged
writes lost**.  The observability layer must tell the same story: the
per-shard lag gauge is exposed, and the promotion counter ticks exactly
once.

The CLI round-trip (``replicate`` → ``shard-failover`` → query/verify)
rides along under the ``slow`` marker, matching the CI chaos job.
"""

from __future__ import annotations

import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.cluster import ShardedIndex
from repro.obs import instruments
from repro.replication import PrimaryDownError, ReplicatedIndex, replicate
from repro.service.context import QueryContext


@pytest.fixture()
def obs_enabled():
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


class FakeClock:
    def __init__(self) -> None:
        self.now = 500.0

    def __call__(self) -> float:
        return self.now


def test_kill_primary_mid_load_loses_no_acked_write(
    tmp_path, small_words, edit, obs_enabled
):
    directory = str(tmp_path / "cluster")
    ShardedIndex.build(
        small_words[:200], edit, shards=2, num_pivots=3, seed=11
    ).save(directory)
    replicate(directory, edit, replicas=2, read_policy="round-robin")
    idx = ReplicatedIndex.open(directory, edit, wal_fsync=False)
    baseline = sorted(str(o) for o in idx.objects())

    batch = small_words[200:260]
    acked: list = []
    refused: list = []
    writer_errors: list[BaseException] = []
    reader_errors: list[BaseException] = []
    primary_killed = threading.Event()
    stop_readers = threading.Event()

    def writer():
        try:
            for i, word in enumerate(batch):
                if i == len(batch) // 3:
                    # Kill shard 0's primary mid-stream: the workload is
                    # live on both sides of this line.
                    idx.monitor.mark_down(0, idx._sets[0].primary.replica_id)
                    primary_killed.set()
                try:
                    idx.insert(word)
                    acked.append(word)
                except PrimaryDownError:
                    refused.append(word)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            writer_errors.append(exc)

    def reader():
        try:
            i = 0
            while not stop_readers.is_set():
                out = idx.range_query(
                    small_words[i % 50], 2.0, context=QueryContext()
                )
                for obj in out:
                    assert edit(obj, small_words[i % 50]) <= 2.0
                i += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            reader_errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    threads[0].join()
    stop_readers.set()
    for t in threads[1:]:
        t.join()

    assert not writer_errors, writer_errors
    assert not reader_errors, reader_errors
    assert primary_killed.is_set()
    # The split is honest: every word either acked or refused, and the
    # dead shard did refuse some of the stream.
    assert len(acked) + len(refused) == len(batch)
    assert refused, "no write was routed to the killed shard"
    assert acked, "the healthy shard should have kept accepting writes"

    # Degraded reads: still answering, but saying so — naming the shard.
    out = idx.range_query(small_words[0], 2.0, context=QueryContext())
    assert not out.complete
    assert "shard 0" in str(out.reason)
    assert out.per_shard[0]["complete"] is False

    # Failover restores writes; the refused words go through on retry.
    info = idx.failover(0)
    assert info["shard"] == 0
    for word in refused:
        idx.insert(word)
    out = idx.range_query(small_words[0], 2.0, context=QueryContext())
    assert out.complete, out.reason

    # Zero acknowledged writes lost — across the kill, the degraded
    # window, and the promotion.
    survived = set(str(o) for o in idx.objects())
    lost = (set(baseline) | set(map(str, acked + refused))) - survived
    assert not lost, f"lost acked writes: {lost}"
    assert idx.verify().ok

    # The observability layer tells the same story.
    assert (
        instruments.replication()
        .promotions.labels(shard="0")
        .value
        == 1
    )
    text = obs.render_text()
    assert "repro_replication_lag_bytes" in text
    assert 'shard="0"' in text and 'replica="' in text
    assert "repro_replication_shipped_bytes_total" in text

    # And the whole history is durable.
    idx.close()
    reopened = ReplicatedIndex.open(directory, edit, wal_fsync=False)
    try:
        assert set(str(o) for o in reopened.objects()) == survived
        assert reopened.verify().ok
    finally:
        reopened.close()


def test_heartbeat_timeout_degrades_then_recovers(
    tmp_path, small_words, edit
):
    """Liveness via heartbeats alone: a silent primary times out (reads
    degrade, misses are counted), a beat brings it back."""
    clock = FakeClock()
    directory = str(tmp_path / "cluster")
    ShardedIndex.build(
        small_words[:150], edit, shards=2, num_pivots=3, seed=12
    ).save(directory)
    replicate(directory, edit, replicas=1)
    idx = ReplicatedIndex.open(
        directory, edit, wal_fsync=False, heartbeat_timeout=5.0, clock=clock
    )
    try:
        assert idx.degraded_shards() == {}
        clock.now += 60.0  # everyone goes silent
        down = idx.check_health()
        assert all(len(ids) == 2 for ids in down.values())  # primary + follower
        assert idx.monitor.misses >= 4
        assert sorted(idx.degraded_shards()) == [0, 1]
        out = idx.range_query(small_words[0], 2.0, context=QueryContext())
        assert not out.complete
        # Beats restore service without any structural change.
        for sid, rset in idx._sets.items():
            for rid in rset.member_ids():
                idx.monitor.beat(sid, rid)
        assert idx.degraded_shards() == {}
        idx.insert(small_words[150])
        assert idx.verify().ok
    finally:
        idx.close()


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.slow
class TestCliRoundTrip:
    def test_replicate_failover_query_verify(self, tmp_path):
        directory = str(tmp_path / "cluster")
        built = run_cli(
            "shard-build", "--dataset", "words", "--size", "300",
            "--shards", "2", "--out", directory,
        )
        assert built.returncode == 0, built.stderr

        replicated = run_cli(
            "replicate", "--dir", directory,
            "--replicas", "2", "--read-policy", "round-robin",
        )
        assert replicated.returncode == 0, replicated.stderr
        assert "replicated shards [0, 1]" in replicated.stdout
        assert replicated.stdout.count("follower") >= 4

        again = run_cli("replicate", "--dir", directory)
        assert again.returncode == 1
        assert "already" in again.stderr

        failed_over = run_cli(
            "shard-failover", "--dir", directory, "--shard", "0"
        )
        assert failed_over.returncode == 0, failed_over.stderr
        assert "promoted replica" in failed_over.stdout

        queried = run_cli(
            "shard-query", "--dir", directory, "--mode", "knn", "--k", "4"
        )
        assert queried.returncode == 0, queried.stderr
        assert "status    : complete" in queried.stdout

        verified = run_cli("shard-verify", "--dir", directory)
        assert verified.returncode == 0, (
            verified.stdout + verified.stderr
        )

    def test_serve_with_replicas(self):
        served = run_cli(
            "serve", "--dataset", "words", "--size", "200",
            "--shards", "2", "--replicas", "1",
            "--read-policy", "fastest-mind",
            "--num-queries", "9", "--mutations", "4", "--workers", "2",
        )
        assert served.returncode == 0, served.stderr
        assert "replicated 2 shards x 1 followers" in served.stdout
        assert "max lag 0 bytes" in served.stdout
        assert "degraded shards none" in served.stdout

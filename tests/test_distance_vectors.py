"""Unit tests for vector metrics."""

import math

import numpy as np
import pytest

from repro.distance import (
    ChebyshevDistance,
    EuclideanDistance,
    HammingDistance,
    ManhattanDistance,
    MinkowskiDistance,
)


class TestMinkowski:
    def test_l2_matches_numpy(self):
        rng = np.random.default_rng(0)
        metric = EuclideanDistance()
        for _ in range(20):
            a, b = rng.normal(size=8), rng.normal(size=8)
            assert metric(a, b) == pytest.approx(np.linalg.norm(a - b))

    def test_l1(self):
        metric = ManhattanDistance()
        assert metric([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_l5(self):
        metric = MinkowskiDistance(5)
        a, b = np.array([1.0, 2.0]), np.array([4.0, 6.0])
        expected = (3.0**5 + 4.0**5) ** 0.2
        assert metric(a, b) == pytest.approx(expected)

    def test_linf(self):
        metric = ChebyshevDistance()
        assert metric([1, 5, 2], [2, 1, 2]) == pytest.approx(4.0)
        assert math.isinf(metric.p)

    def test_identity(self):
        metric = EuclideanDistance()
        v = np.array([1.0, 2.0, 3.0])
        assert metric(v, v) == 0.0

    def test_symmetry(self):
        metric = MinkowskiDistance(3)
        a, b = np.array([0.0, 1.0]), np.array([2.0, 5.0])
        assert metric(a, b) == pytest.approx(metric(b, a))

    def test_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MinkowskiDistance(0.5)

    def test_rejects_shape_mismatch(self):
        metric = EuclideanDistance()
        with pytest.raises(ValueError):
            metric([1.0, 2.0], [1.0, 2.0, 3.0])

    def test_name(self):
        assert MinkowskiDistance(5).name == "L5"
        assert ChebyshevDistance().name == "Linf"


class TestHamming:
    def test_basic(self):
        metric = HammingDistance()
        assert metric([0, 1, 0, 1], [0, 0, 0, 1]) == 1.0
        assert metric([1, 1], [0, 0]) == 2.0

    def test_numpy_arrays(self):
        metric = HammingDistance()
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 1, 1], dtype=np.uint8)
        assert metric(a, b) == 2.0

    def test_is_discrete(self):
        assert HammingDistance().is_discrete

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            HammingDistance()([1, 0], [1, 0, 1])


class TestMaxDistance:
    def test_overestimates_for_continuous(self):
        rng = np.random.default_rng(1)
        metric = EuclideanDistance()
        data = [rng.normal(size=3) for _ in range(50)]
        d_plus = metric.max_distance(data)
        true_max = max(
            metric(a, b) for i, a in enumerate(data) for b in data[i + 1 :]
        )
        # Padded estimate from a full scan at this size.
        assert d_plus >= true_max

    def test_trivial_inputs(self):
        metric = EuclideanDistance()
        assert metric.max_distance([np.zeros(2)]) == 1.0
        assert metric.max_distance([]) == 1.0

"""Distributed tracing end to end: ids, stitching, flight recorder.

The acceptance property is *correlation*: one request id minted at the
edge must resolve, after the fact, to every record the request left
behind — the stitched span tree in the wire reply (whose per-span sums
equal the reply's totals), the slow-query-log entry, the supervisor
journal events of any failover that degraded it, and the flight-recorder
dump the anomaly triggered.  The chaos test at the bottom proves the
whole chain under injected transport faults and a supervisor-driven
failover mid-load.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.cluster import ShardedIndex
from repro.core.spbtree import SPBTree
from repro.distance import EditDistance, EuclideanDistance
from repro.net import (
    FaultPlan,
    FaultyTransport,
    NetClient,
    RetryPolicy,
    serve_in_thread,
)
from repro.obs.flight import FLIGHT_VERSION, FlightRecorder
from repro.obs.ids import clean_trace_id, is_local_id, new_trace_id
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SLOWLOG_VERSION
from repro.obs.trace import QueryTrace, Span, attributed_totals_from_dict
from repro.replication import ReplicatedIndex, replicate
from repro.service import QueryContext, QueryEngine
from repro.storage.faults import TransientIOError
from repro.supervisor import Supervisor
from repro.supervisor.events import (
    JOURNAL_VERSION,
    EventJournal,
    read_journal,
)


class FakeClock:
    def __init__(self, now: float = 500.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# ------------------------------------------------------------------- ids


class TestIds:
    def test_new_trace_id_shape_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(256)}
        assert len(ids) == 256  # 64 random bits never collide in 256 draws
        for rid in ids:
            assert is_local_id(rid)
            assert len(rid) == 16

    def test_clean_trace_id_accepts_reasonable_tokens(self):
        assert clean_trace_id("deadbeefdeadbeef") == "deadbeefdeadbeef"
        # Foreign tracer formats pass too, not just our hex.
        assert clean_trace_id("req-123_x.y") == "req-123_x.y"

    def test_clean_trace_id_rejects_hostile_input(self):
        assert clean_trace_id(None) is None
        assert clean_trace_id("") is None
        assert clean_trace_id(12345) is None
        assert clean_trace_id("x" * 65) is None  # log-bloat bound
        assert clean_trace_id("evil\nid") is None
        assert clean_trace_id("a b") is None


# ------------------------------------------------------- trace round-trip


def _sample_trace() -> QueryTrace:
    trace = QueryTrace("range")
    shard = trace.span("shard-0")
    shard.compdists = 40
    shard.page_accesses = 5
    shard.counts["nodes_visited"] = 7
    shard.counts["replica"] = "r2"  # identity annotation: a string
    level = Span("level-0")
    level.compdists = 40
    level.page_accesses = 5
    shard.children.append(level)
    other = trace.span("shard-1")
    other.compdists = 2
    other.page_accesses = 1
    trace.span("queue-wait").elapsed = 0.004
    trace.root.compdists = 42
    trace.root.page_accesses = 6
    trace.complete = False
    trace.reason = "compdists budget exhausted"
    return trace


class TestTraceSerialisation:
    def test_as_dict_from_dict_round_trips(self):
        trace = _sample_trace()
        rebuilt = QueryTrace.from_dict(trace.as_dict())
        assert rebuilt.as_dict() == trace.as_dict()
        assert rebuilt.kind == "range"
        assert rebuilt.complete is False
        assert rebuilt.reason == "compdists budget exhausted"

    def test_string_counts_survive_the_wire(self):
        rebuilt = QueryTrace.from_dict(_sample_trace().as_dict())
        counts = rebuilt.span("shard-0").counts
        assert counts["replica"] == "r2"  # not coerced to int
        assert counts["nodes_visited"] == 7

    def test_rebuilt_trace_reconciles_like_the_original(self):
        trace = _sample_trace()
        rebuilt = QueryTrace.from_dict(trace.as_dict())
        assert rebuilt.attributed_totals() == trace.attributed_totals() == (
            42,
            6,
        )
        assert attributed_totals_from_dict(trace.as_dict()) == (42, 6)

    def test_rebuilt_trace_span_lookup_is_live(self):
        rebuilt = QueryTrace.from_dict(_sample_trace().as_dict())
        # span() must find the deserialised child, not create a duplicate.
        assert rebuilt.span("shard-0") is rebuilt.root.children[0]
        assert len(rebuilt.root.children) == 3

    def test_from_dict_ignores_unknown_fields(self):
        data = _sample_trace().as_dict()
        data["spans"]["children"][0]["future_field"] = {"x": 1}
        data["future_top_level"] = True
        rebuilt = QueryTrace.from_dict(data)
        assert rebuilt.span("shard-0").compdists == 40


# --------------------------------------------------------- histogram exemplars


class TestExemplars:
    def test_observe_with_trace_id_records_bucket_exemplar(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_lat_seconds", "help", buckets=(0.1, 1.0))
        h.observe(0.05, trace_id="aaaa")
        h.observe(0.5, trace_id="bbbb")
        h.observe(0.07, trace_id="cccc")  # same bucket: last one wins
        ex = h.exemplars()
        assert ex[0.1] == {"trace_id": "cccc", "value": 0.07}
        assert ex[1.0]["trace_id"] == "bbbb"

    def test_untraced_observations_cost_no_exemplar_state(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_plain_seconds", "help", buckets=(1.0,))
        h.observe(0.5)
        assert h.exemplars() == {}
        assert h._exemplars is None  # lazily allocated only when needed


# ---------------------------------------------------------- flight recorder


class _Ctx:
    """Minimal stand-in for a QueryContext that finished a traced query."""

    def __init__(self, request_id=None, compdists=10, page_accesses=2):
        self.request_id = request_id or new_trace_id()
        self.compdists = compdists
        self.page_accesses = page_accesses
        self.epoch = None
        self.trace = QueryTrace("knn")
        span = self.trace.span("shard-0")
        span.compdists = compdists
        span.page_accesses = page_accesses
        self.trace.finish(self)


class _Result:
    def __init__(self, complete=True, reason=None):
        self.complete = complete
        self.reason = reason


class TestFlightRecorder:
    def test_untraced_context_is_a_noop(self):
        flight = FlightRecorder()
        assert flight.observe("knn", QueryContext(), _Result()) is None
        assert len(flight) == 0 and flight.recorded == 0

    def test_ring_is_bounded_but_recorded_is_not(self):
        flight = FlightRecorder(capacity=4)
        for _ in range(10):
            flight.observe("knn", _Ctx(), _Result())
        assert len(flight) == 4
        assert flight.recorded == 10

    def test_degraded_result_auto_triggers_a_dump(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path))
        ctx = _Ctx()
        flight.observe("knn", _Ctx(), _Result())  # healthy neighbour
        flight.observe(
            "knn", ctx, _Result(complete=False, reason="deadline"),
            elapsed=0.25,
        )
        (name,) = [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")]
        assert "degraded" in name
        header, entries = obs.read_flight(str(tmp_path / name))
        assert header["v"] == FLIGHT_VERSION
        assert header["reason"] == "degraded"
        assert header["entries"] == len(entries) == 2
        assert header["detail"]["request_id"] == ctx.request_id
        # The anomalous entry carries the whole story: outcome + span tree.
        anomalous = [e for e in entries if e["request_id"] == ctx.request_id]
        (entry,) = anomalous
        assert entry["complete"] is False
        assert entry["reason"] == "deadline"
        assert entry["elapsed_ms"] == pytest.approx(250.0)
        assert attributed_totals_from_dict(entry["trace"]) == (
            entry["compdists"],
            entry["page_accesses"],
        )

    def test_per_reason_cooldown_and_force(self, tmp_path):
        clock = FakeClock(0.0)
        flight = FlightRecorder(
            directory=str(tmp_path), min_dump_interval_s=5.0, clock=clock
        )
        flight.observe("knn", _Ctx(), _Result())
        assert flight.trigger("failover") is not None
        assert flight.trigger("failover") is None  # inside the cooldown
        # A different reason is not throttled by failover's cooldown...
        assert flight.trigger("quarantine") is not None
        # ...force bypasses it entirely...
        assert flight.trigger("failover", force=True) is not None
        # ...and the cooldown expires on schedule.
        clock.now = 20.0
        assert flight.trigger("failover") is not None
        assert flight.triggers == 5 and flight.dumps == 4

    def test_rejection_burst_dumps_once_per_window(self, tmp_path):
        clock = FakeClock(0.0)
        flight = FlightRecorder(
            directory=str(tmp_path),
            rejection_burst=3,
            burst_window_s=1.0,
            clock=clock,
        )
        flight.note_rejection()
        clock.now = 2.0  # the first rejection ages out of the window
        flight.note_rejection()
        flight.note_rejection()
        assert flight.dumps == 0  # only two within any one window
        flight.note_rejection()
        assert flight.dumps == 1
        (name,) = os.listdir(tmp_path)
        assert "rejection-burst" in name

    def test_torn_tail_keeps_complete_prefix(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path))
        for _ in range(3):
            flight.observe("range", _Ctx(), _Result())
        path = flight.trigger("manual", force=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"request_id": "torn-mid-wri')
        header, entries = obs.read_flight(path)
        assert header["entries"] == 3
        assert len(entries) == 3  # the torn line is dropped, prefix kept

    def test_read_flight_refuses_a_slow_log(self, tmp_path):
        # Slow-log entries also carry "reason"; the header check must not
        # mistake one for a dump and silently swallow the first entry.
        path = str(tmp_path / "slow.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"v": 1, "kind": "knn", "reason": "x"}) + "\n")
        with pytest.raises(ValueError, match="flight header"):
            obs.read_flight(path)

    def test_find_request_searches_every_dump(self, tmp_path):
        flight = FlightRecorder(directory=str(tmp_path))
        wanted = _Ctx()
        flight.observe("knn", _Ctx(), _Result())
        flight.observe("knn", wanted, _Result())
        flight.trigger("manual", force=True)
        flight.trigger("failover", force=True)
        hits = obs.find_request(str(tmp_path), wanted.request_id)
        assert len(hits) == 2  # present in both dumps
        for path, entry in hits:
            assert entry["request_id"] == wanted.request_id
            assert os.path.dirname(path) == str(tmp_path)
        assert flight.find(wanted.request_id)  # and in the live ring
        assert obs.find_request(str(tmp_path), "no-such-id") == []

    def test_directory_none_counts_dumps_without_writing(self):
        flight = FlightRecorder(directory=None)
        flight.observe("knn", _Ctx(), _Result(complete=False))
        assert flight.dumps == 1  # the degraded auto-trigger still counted


# ---------------------------------------------------- schema versions (logs)


class TestSchemaVersions:
    def test_slow_log_entries_carry_version_and_request_id(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = obs.SlowQueryLog(path=path, threshold_ms=0.0)
        ctx = _Ctx()
        log.maybe_record("knn", 0.1, ctx, _Result())
        log.close()
        (entry,) = obs.read_slow_log(path)
        assert entry["v"] == SLOWLOG_VERSION
        assert entry["request_id"] == ctx.request_id

    def test_slow_log_reader_tolerates_legacy_and_future_entries(
        self, tmp_path
    ):
        path = str(tmp_path / "slow.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            # Pre-versioning entry: no "v", no request_id.
            fh.write(json.dumps({"kind": "knn", "elapsed_ms": 5.0}) + "\n")
            # Future entry: unknown fields ride along untouched.
            fh.write(
                json.dumps({"v": 99, "kind": "range", "hyper_field": [1]})
                + "\n"
            )
            fh.write('{"torn": ')  # crash mid-append
        entries = obs.read_slow_log(path)
        assert len(entries) == 2
        assert "v" not in entries[0]
        assert entries[1]["hyper_field"] == [1]

    def test_journal_entries_carry_version_and_request_id(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        journal = EventJournal(path=path, clock=FakeClock(1.0))
        rid = new_trace_id()
        journal.record("promoted", shard=0, replica=1, request_id=rid)
        journal.record("scrub-pass")  # request id stays optional
        journal.close()
        first, second = read_journal(path)
        assert first["v"] == JOURNAL_VERSION
        assert first["request_id"] == rid
        assert first["shard"] == 0 and first["replica"] == 1
        assert "request_id" not in second

    def test_journal_reader_tolerates_legacy_entries_and_torn_tail(
        self, tmp_path
    ):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"ts": 1.0, "event": "promoted"}) + "\n")
            fh.write(json.dumps({"v": 1, "ts": 2.0, "event": "rejoined"}))
            fh.write("\n")
            fh.write('{"v": 1, "ts": 3.0, "ev')  # torn tail
        events = read_journal(path)
        assert [e["event"] for e in events] == ["promoted", "rejoined"]


# ------------------------------------------------------- wire stitching


@pytest.fixture()
def traced_server(tmp_path, small_words):
    """An SPB-tree engine behind the wire protocol with slow log + flight."""
    tree = SPBTree.build(small_words[:150], EditDistance(), seed=7)
    slow_path = str(tmp_path / "slow.jsonl")
    slow = obs.SlowQueryLog(path=slow_path, threshold_ms=0.0)
    flight_dir = str(tmp_path / "flight")
    flight = FlightRecorder(directory=flight_dir)
    engine = QueryEngine(
        tree, workers=2, slow_log=slow, flight=flight
    ).start()
    handle = serve_in_thread(engine, "127.0.0.1", 0)
    try:
        yield handle, slow_path, flight, flight_dir, small_words
    finally:
        handle.stop(2.0)
        engine.stop()
        slow.close()


class TestWireStitching:
    def test_traced_client_gets_stitched_tree_that_reconciles(
        self, traced_server
    ):
        handle, slow_path, _, _, words = traced_server
        with NetClient("127.0.0.1", handle.port, trace=True) as client:
            result = client.knn_query(words[0], 4)
        assert result.complete
        # The correlation key is the *client's* mint; the server adopted it.
        assert client.last_request_id is not None
        assert is_local_id(client.last_request_id)
        trace = client.last_trace
        assert trace is not None and trace.complete
        totals = (trace.root.compdists, trace.root.page_accesses)
        assert totals[0] > 0
        # Reconciliation across the process boundary: the stitched tree's
        # per-span sums equal the reply's totals.
        assert attributed_totals_from_dict(trace.as_dict()) == totals
        # The engine's queue-wait stage crossed the wire with the tree.
        assert "queue-wait" in {s.name for s in trace.root.children}
        # The same id resolves into the server's slow log.
        entries = obs.read_slow_log(slow_path)
        mine = [
            e for e in entries if e.get("request_id") == client.last_request_id
        ]
        assert mine and mine[0]["compdists"] == totals[0]

    def test_bare_client_gets_a_server_minted_id(self, traced_server):
        handle, slow_path, _, _, words = traced_server
        # trace=False: no trace_id field on the wire (the old protocol);
        # the server mints one itself so the slow log still correlates.
        with NetClient("127.0.0.1", handle.port) as client:
            client.range_query(words[1], 1.0)
            assert client.last_request_id is not None
            assert is_local_id(client.last_request_id)

    def test_degraded_reply_triggers_a_flight_dump(self, traced_server):
        handle, _, flight, flight_dir, words = traced_server
        with NetClient("127.0.0.1", handle.port, trace=True) as client:
            result = client.knn_query(words[2], 4, max_compdists=10)
        assert not result.complete
        assert client.last_trace is not None
        assert not client.last_trace.complete
        rid = client.last_request_id
        # The degraded reply landed in the ring and triggered a dump whose
        # entries include this very request.
        assert flight.find(rid)
        hits = obs.find_request(flight_dir, rid)
        assert hits, os.listdir(flight_dir)
        path, entry = hits[0]
        assert "degraded" in os.path.basename(path)
        assert entry["complete"] is False
        assert entry["source"].startswith("net:")


# ----------------------------------- reconciliation under routing + retries


def _traced_range(idx, query, radius, **limits):
    ctx = QueryContext.with_limits(request_id=new_trace_id(), **limits)
    ctx.trace = QueryTrace("range")
    result = idx.range_query(query, radius, context=ctx)
    return ctx, result


def _replica_annotations(trace):
    out = {}
    for span in trace.root.children:
        if span.name.startswith("shard-") and "replica" in span.counts:
            out[span.name] = span.counts["replica"]
    return out


class TestReplicatedReconciliation:
    @pytest.fixture()
    def cluster_dir(self, tmp_path, small_words, edit):
        directory = str(tmp_path / "cluster")
        ShardedIndex.build(
            small_words[:200], edit, shards=2, num_pivots=3, seed=11
        ).save(directory)
        return directory

    def test_fastest_mind_reads_reconcile_and_name_their_replica(
        self, cluster_dir, small_words, edit
    ):
        replicate(cluster_dir, edit, replicas=2, read_policy="fastest-mind")
        idx = ReplicatedIndex.open(cluster_dir, edit, wal_fsync=False)
        try:
            for word in small_words[:8]:
                ctx, _ = _traced_range(idx, word, 2.0)
                assert ctx.trace.attributed_totals() == (
                    ctx.compdists,
                    ctx.page_accesses,
                ), f"trace does not reconcile for {word!r}"
                annotations = _replica_annotations(ctx.trace)
                assert annotations, "no replica identity on any shard span"
                for name, rid in annotations.items():
                    assert isinstance(rid, str) and rid.startswith("r"), (
                        name,
                        rid,
                    )
        finally:
            idx.close()

    def test_round_robin_rotates_the_recorded_identity(
        self, cluster_dir, small_words, edit
    ):
        replicate(cluster_dir, edit, replicas=2, read_policy="round-robin")
        idx = ReplicatedIndex.open(cluster_dir, edit, wal_fsync=False)
        try:
            seen = set()
            for word in small_words[:6]:
                ctx, _ = _traced_range(idx, word, 2.0)
                seen.update(_replica_annotations(ctx.trace).values())
            assert len(seen) >= 2, f"round-robin never rotated: {seen}"
        finally:
            idx.close()

    def test_reconciliation_holds_across_a_failover(
        self, cluster_dir, small_words, edit
    ):
        replicate(cluster_dir, edit, replicas=2, read_policy="fastest-mind")
        idx = ReplicatedIndex.open(cluster_dir, edit, wal_fsync=False)
        try:
            before, _ = _traced_range(idx, small_words[0], 2.0)
            assert before.trace.attributed_totals() == (
                before.compdists,
                before.page_accesses,
            )
            rset = idx._sets[0]
            p0 = rset.primary.replica_id
            idx.monitor.mark_down(0, p0)
            info = idx.failover(0, request_id=new_trace_id())
            assert info["promoted"] != p0
            after, result = _traced_range(idx, small_words[1], 2.0)
            assert after.trace.attributed_totals() == (
                after.compdists,
                after.page_accesses,
            )
            # fastest-mind now routes shard 0 to the fresh primary.
            annotations = _replica_annotations(after.trace)
            if "shard-0" in annotations:
                assert annotations["shard-0"] == f"r{info['promoted']}"
        finally:
            idx.close()


class _FlakyOnce:
    """Tree wrapper whose first query attempt does a full traversal's
    worth of work, then fails transiently (the engine retries it)."""

    def __init__(self, tree):
        self._tree = tree
        self.failures_left = 1

    def __getattr__(self, name):
        return getattr(self._tree, name)

    def knn_query(self, *args, **kwargs):
        result = self._tree.knn_query(*args, **kwargs)
        if self.failures_left:
            self.failures_left -= 1
            raise TransientIOError("injected: attempt lost after doing work")
        return result


class TestRetriedAttemptTrace:
    def test_final_trace_describes_only_the_successful_attempt(
        self, small_vectors
    ):
        tree = SPBTree.build(
            small_vectors, EuclideanDistance(), seed=7, cache_pages=0
        )
        q = small_vectors[6]
        clean = QueryContext()
        tree.knn_query(q, 4, context=clean)
        flaky = _FlakyOnce(tree)
        with QueryEngine(
            flaky,
            workers=1,
            retry_attempts=3,
            retry_base_delay=0.0,
            trace_queries=True,
        ) as engine:
            pending = engine.submit("knn", q, 4)
            result = pending.result(timeout=60)
        assert result.complete
        assert engine.retries == 1
        ctx = pending.context
        # The id is minted once at submit and survives the retry...
        assert ctx.request_id is not None and is_local_id(ctx.request_id)
        # ...while the trace was reset with the counters, so the final
        # span tree describes exactly the attempt that succeeded.
        assert ctx.trace.attributed_totals() == (
            ctx.compdists,
            ctx.page_accesses,
        )
        assert (ctx.compdists, ctx.page_accesses) == (
            clean.compdists,
            clean.page_accesses,
        )


# ------------------------------------------------- chaos: end-to-end story


def beat_all(idx, skip=()):
    for sid, rset in idx._sets.items():
        for rid in rset.member_ids():
            if (sid, rid) not in skip:
                idx.monitor.beat(sid, rid)


class TestChaosCorrelation:
    def test_every_degraded_reply_resolves_end_to_end(
        self, tmp_path, small_words, edit
    ):
        """Under transport faults and a supervisor failover mid-load, every
        degraded reply's request id resolves to (a) a stitched span tree
        whose per-span sums equal the reply totals, (b) its slow-log
        entry, (c) the journal events of the failover — and the failover's
        flight dump contains the affected requests' traces."""
        timeout = 4.0
        clock = FakeClock()
        directory = str(tmp_path / "cluster")
        ShardedIndex.build(
            small_words[:200], edit, shards=2, num_pivots=3, seed=11
        ).save(directory)
        replicate(directory, edit, replicas=2, read_policy="round-robin")
        idx = ReplicatedIndex.open(
            directory, edit, wal_fsync=False,
            heartbeat_timeout=timeout, clock=clock,
        )
        slow_path = str(tmp_path / "slow.jsonl")
        slow = obs.SlowQueryLog(path=slow_path, threshold_ms=0.0)
        flight_dir = str(tmp_path / "flight")
        flight = FlightRecorder(directory=flight_dir)
        engine = QueryEngine(
            idx, workers=2, slow_log=slow, flight=flight
        ).start()
        handle = serve_in_thread(engine, "127.0.0.1", 0)
        sup = Supervisor(idx, scrub_interval=None, flight=flight)
        proxy = FaultyTransport(
            "127.0.0.1", handle.port, seed=3,
            plan_c2s=FaultPlan(drop_rate=0.08),
            plan_s2c=FaultPlan(delay_rate=0.2, delay_s=0.02),
        )
        client = NetClient(
            "127.0.0.1", proxy.port,
            op_timeout=1.0,
            retry=RetryPolicy(attempts=6, base_delay=0.02, seed=5),
            trace=True,
        )
        replies = []  # (request_id, stitched QueryTrace, QueryResult)

        def ask(i):
            result = client.range_query(
                small_words[i % 50], 2.0, max_compdists=40
            )
            assert client.last_request_id is not None
            assert client.last_trace is not None
            replies.append(
                (client.last_request_id, client.last_trace, result)
            )

        try:
            for i in range(6):
                ask(i)
            before_failover = {rid for rid, _, _ in replies}

            # Kill shard 0's primary and let the *supervisor* drive the
            # failover while the client keeps asking through the faults.
            rset = idx._sets[0]
            p0 = rset.primary.replica_id
            idx.monitor.mark_down(0, p0)
            promoted = False
            for i in range(30):
                beat_all(idx, skip={(0, p0)})
                ask(6 + i)
                if sup.tick()["promoted"]:
                    promoted = True
                    break
                clock.now += 0.5
            assert promoted, "supervisor never promoted a follower"
            for i in range(4):
                ask(40 + i)
        finally:
            client.close()
            proxy.close()
            handle.stop(5.0)
            engine.stop()
            sup.close()
            slow.close()
            idx.close()

        degraded = [
            (rid, tr, res) for rid, tr, res in replies if not res.complete
        ]
        assert degraded, "the compdist budget should have degraded replies"
        assert client.retries > 0 or proxy.injected["drop"] == 0

        # (a) Every reply — degraded included — carries a stitched span
        # tree whose per-span sums equal the reply's totals.
        for rid, trace, result in replies:
            totals = (trace.root.compdists, trace.root.page_accesses)
            assert attributed_totals_from_dict(trace.as_dict()) == totals, rid
            assert trace.complete == result.complete, rid
            if not result.complete:
                assert trace.reason, rid

        # (b) Every degraded reply's id resolves into the slow log, and
        # the logged entry reconciles on its own.
        entries = obs.read_slow_log(slow_path)
        by_id = {}
        for entry in entries:
            by_id.setdefault(entry.get("request_id"), []).append(entry)
        for rid, trace, _ in degraded:
            assert rid in by_id, f"degraded {rid} missing from the slow log"
            entry = by_id[rid][-1]
            assert entry["v"] == SLOWLOG_VERSION
            assert entry["source"].startswith("net:")
            assert attributed_totals_from_dict(entry["trace"]) == (
                entry["compdists"],
                entry["page_accesses"],
            ), rid

        # (c) The journal holds the failover's own correlated events.
        events = sup.events(200)
        assert all(e.get("v") == JOURNAL_VERSION for e in events)
        promoted_events = [e for e in events if e["event"] == "promoted"]
        assert promoted_events
        failover_rid = promoted_events[0].get("request_id")
        assert failover_rid is not None and is_local_id(failover_rid)

        # The failover triggered a flight dump carrying the requests that
        # were in flight around it — every pre-failover reply included —
        # under the same correlation id the journal recorded.
        dumps = [
            n for n in os.listdir(flight_dir) if n.endswith("-failover.jsonl")
        ]
        assert dumps, os.listdir(flight_dir)
        header, dump_entries = obs.read_flight(
            os.path.join(flight_dir, sorted(dumps)[0])
        )
        assert header["detail"]["request_id"] == failover_rid
        dumped_ids = {e["request_id"] for e in dump_entries}
        missing = before_failover - dumped_ids
        assert not missing, f"pre-failover requests absent from dump: {missing}"


# ------------------------------------------------------------ CLI surfaces


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.slow
class TestCliSurfaces:
    def test_trace_live_renders_and_reconciles(self):
        out = run_cli(
            "trace", "--dataset", "words", "--size", "200",
            "--mode", "knn", "--k", "4",
        )
        assert out.returncode == 0, out.stderr
        assert "trace knn (complete)" in out.stdout
        assert "request_id=" in out.stdout
        assert "attributed:" in out.stdout
        assert "WARNING" not in out.stderr

    def test_serve_trace_file_and_metrics_diff_round_trip(self, tmp_path):
        slow_path = str(tmp_path / "slow.jsonl")
        snap_dir = str(tmp_path / "snaps")
        flight_dir = str(tmp_path / "flight")
        out = run_cli(
            "serve", "--dataset", "words", "--size", "200",
            "--num-queries", "8", "--workers", "2", "--metrics",
            "--slow-log", slow_path, "--slow-ms", "0",
            "--snapshot-dir", snap_dir, "--flight-dir", flight_dir,
            "--max-compdists", "40",
        )
        assert out.returncode == 0, out.stderr
        assert "flight" in out.stdout

        # Every slow-log entry carries an id; pick one and resolve it.
        entries = obs.read_slow_log(slow_path)
        assert entries
        rid = entries[0]["request_id"]
        out = run_cli("trace", "--file", slow_path, "--request-id", rid)
        assert out.returncode == 0, out.stderr
        assert f"request_id={rid}" in out.stdout
        assert "attributed:" in out.stdout
        out = run_cli("trace", "--file", slow_path, "--request-id", "nope")
        assert out.returncode == 1
        assert "no traces" in out.stderr

        # The budget degraded queries, so a flight dump exists and the
        # trace CLI reads it with the same renderer.
        dumps = sorted(os.listdir(flight_dir))
        assert dumps, "no flight dump despite degraded queries"
        out = run_cli("trace", "--file", os.path.join(flight_dir, dumps[0]))
        assert out.returncode == 0, out.stderr
        assert "PARTIAL" in out.stdout

        # metrics-diff over the run's first and last snapshots.
        snaps = sorted(os.listdir(snap_dir))
        assert len(snaps) >= 2, snaps
        out = run_cli(
            "metrics-diff",
            os.path.join(snap_dir, snaps[0]),
            os.path.join(snap_dir, snaps[-1]),
            "--changed-only",
        )
        assert out.returncode == 0, out.stderr
        assert "repro_query_latency_seconds" in out.stdout

    def test_metrics_diff_rejects_a_missing_snapshot(self, tmp_path):
        out = run_cli(
            "metrics-diff",
            str(tmp_path / "a.json"),
            str(tmp_path / "b.json"),
        )
        assert out.returncode == 1
        assert "metrics-diff:" in out.stderr

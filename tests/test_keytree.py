"""Unit tests for the float-keyed B+-tree backing the M-Index."""

import random
import struct

import pytest

from repro.baselines.keytree import KeyBPlusTree


def make_items(n, seed=0):
    rng = random.Random(seed)
    items = [(rng.uniform(0, 100), struct.pack("<q", i)) for i in range(n)]
    items.sort(key=lambda kv: kv[0])
    return items


class TestBulkLoad:
    def test_round_trip(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        items = make_items(500)
        tree.bulk_load(items)
        got = [(e.key, e.payload) for e in tree.items()]
        assert got == items

    def test_requires_sorted(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        with pytest.raises(ValueError):
            tree.bulk_load([(2.0, b"x" * 8), (1.0, b"y" * 8)])

    def test_empty(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        tree.bulk_load([])
        assert list(tree.items()) == []


class TestRangeScan:
    def test_matches_filter(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        items = make_items(800, seed=2)
        tree.bulk_load(items)
        lo, hi = 25.0, 60.0
        got = [(e.key, e.payload) for e in tree.range_scan(lo, hi)]
        expected = [(k, p) for k, p in items if lo <= k <= hi]
        assert got == expected

    def test_empty_interval(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        tree.bulk_load(make_items(100))
        assert list(tree.range_scan(5.0, 4.0)) == []

    def test_scan_is_ascending(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        tree.bulk_load(make_items(300, seed=3))
        keys = [e.key for e in tree.range_scan(0.0, 100.0)]
        assert keys == sorted(keys)


class TestInsert:
    def test_insert_preserves_order(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        tree.bulk_load(make_items(200, seed=4))
        rng = random.Random(9)
        for i in range(300):
            tree.insert(rng.uniform(0, 100), struct.pack("<q", 1000 + i))
        keys = [e.key for e in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 500

    def test_insert_into_empty(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        tree.insert(5.0, struct.pack("<q", 0))
        assert [e.key for e in tree.items()] == [5.0]

    def test_payload_size_enforced(self):
        tree = KeyBPlusTree(payload_size=8, page_size=256)
        with pytest.raises(ValueError):
            tree.insert(1.0, b"short")

    def test_leaf_page_count_tracks_splits(self):
        tree = KeyBPlusTree(payload_size=8, page_size=128)
        before_items = make_items(50, seed=5)
        tree.bulk_load(before_items)
        pages_before = tree.leaf_page_count
        rng = random.Random(10)
        for i in range(200):
            tree.insert(rng.uniform(0, 100), struct.pack("<q", i))
        assert tree.leaf_page_count > pages_before


class TestValidation:
    def test_payload_too_large(self):
        with pytest.raises(ValueError):
            KeyBPlusTree(payload_size=10_000, page_size=256)


class TestDuplicateBoundaries:
    def test_scan_from_exact_duplicate_key(self):
        """Regression: duplicates of ``lo`` straddling leaves must all be
        returned when the scan starts exactly at that key."""
        tree = KeyBPlusTree(payload_size=8, page_size=128)
        items = [(float(k), struct.pack("<q", i)) for i, k in enumerate(
            sorted([5.0] * 50 + [1.0, 2.0, 9.0] * 5)
        )]
        tree.bulk_load(items)
        got = [e for e in tree.range_scan(5.0, 5.0)]
        assert len(got) == 50

    def test_insert_heavy_duplicates_then_scan(self):
        tree = KeyBPlusTree(payload_size=8, page_size=128)
        for i in range(120):
            tree.insert(7.0, struct.pack("<q", i))
        for i in range(30):
            tree.insert(float(i), struct.pack("<q", 1000 + i))
        # 120 direct inserts of 7.0 plus float(7) from the second loop.
        assert len(list(tree.range_scan(7.0, 7.0))) == 121

"""Mutate-then-persist: incremental writes must survive the save/load cycle.

Three guarantees under test: (1) a tree mutated after construction saves
and reloads to the identical state; (2) deleted objects stay deleted across
every persistence path (save/load, WAL replay, checkpoint); (3) objects
that collide on the same SFC key — equidistant from every pivot — are
distinguished by the byte-level compare, so deleting one never takes the
other with it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persist import load_tree, open_tree, save_tree
from repro.core.spbtree import SPBTree
from repro.core.verify import verify_tree
from repro.distance import EuclideanDistance


def _live(tree) -> list[str]:
    return sorted(repr(obj) for _, _, obj in tree.raf.scan())


class TestMutateThenPersist:
    def test_insert_delete_save_load_round_trip(self, small_words, edit, tmp_path):
        tree = SPBTree.build(small_words[:100], edit, num_pivots=3, seed=7)
        for word in ("zzyzx", "syzygy", "abcde"):
            tree.insert(word)
        assert tree.delete(small_words[3])
        assert tree.delete("abcde")
        directory = str(tmp_path / "idx")
        save_tree(tree, directory)
        loaded = load_tree(directory, edit)
        assert _live(loaded) == _live(tree)
        assert loaded.object_count == tree.object_count
        assert verify_tree(loaded).ok
        # Query parity between the mutated original and the reload.
        for q in ("zzyzx", small_words[3], small_words[10]):
            assert sorted(map(repr, loaded.range_query(q, 1))) == sorted(
                map(repr, tree.range_query(q, 1))
            )

    def test_deleted_stay_deleted_across_reloads(self, small_words, edit, tmp_path):
        tree = SPBTree.build(small_words[:60], edit, num_pivots=3, seed=7)
        victims = small_words[:5]
        for word in victims:
            assert tree.delete(word)
        directory = str(tmp_path / "idx")
        save_tree(tree, directory)
        # Two full save/load generations: tombstones must persist through both.
        middle = load_tree(directory, edit)
        save_tree(middle, directory)
        final = load_tree(directory, edit)
        assert final.object_count == 55
        for word in victims:
            assert final.range_query(word, 0) == []
            assert not final.delete(word)  # really gone, not hidden
        assert verify_tree(final).ok

    def test_deleted_stay_deleted_through_wal_and_checkpoint(
        self, small_words, edit, tmp_path
    ):
        directory = str(tmp_path / "idx")
        save_tree(SPBTree.build(small_words[:60], edit, num_pivots=3, seed=7), directory)
        tree = open_tree(directory, edit)
        assert tree.delete(small_words[7])
        tree.wal.close()
        replayed = load_tree(directory, edit)  # tombstone via WAL replay
        assert replayed.range_query(small_words[7], 0) == []
        tree = open_tree(directory, edit)
        assert tree.range_query(small_words[7], 0) == []
        tree.checkpoint()  # tombstone folded into the new generation
        tree.wal.close()
        folded = load_tree(directory, edit)
        assert folded.range_query(small_words[7], 0) == []
        assert folded.object_count == 59

    def test_delete_then_reinsert(self, small_words, edit, tmp_path):
        directory = str(tmp_path / "idx")
        save_tree(SPBTree.build(small_words[:60], edit, num_pivots=3, seed=7), directory)
        tree = open_tree(directory, edit)
        word = small_words[11]
        assert tree.delete(word)
        tree.insert(word)
        assert tree.range_query(word, 0) == [word]
        assert tree.object_count == 60
        tree.wal.close()
        recovered = load_tree(directory, edit)
        assert recovered.range_query(word, 0) == [word]
        assert recovered.object_count == 60
        assert verify_tree(recovered).ok


class TestDuplicateSfcKeys:
    """Objects equidistant from every pivot share an SFC key; the byte-level
    compare must still tell them apart."""

    @pytest.fixture()
    def twin_tree(self):
        # v1/v2 are mirror images across the pivot axis: identical distance
        # to both pivots, hence identical pivot mapping and SFC key.
        self.v1 = np.array([5.0, 3.0])
        self.v2 = np.array([5.0, -3.0])
        pivots = [np.array([0.0, 0.0]), np.array([10.0, 0.0])]
        filler = [np.array([float(i), float(i % 7)]) for i in range(20)]
        tree = SPBTree.build(
            filler, EuclideanDistance(), pivots=pivots, d_plus=20.0
        )
        tree.insert(self.v1)
        tree.insert(self.v2)
        return tree

    def test_twins_share_a_key(self, twin_tree):
        k1 = twin_tree.curve.encode(twin_tree.space.grid(self.v1))
        k2 = twin_tree.curve.encode(twin_tree.space.grid(self.v2))
        assert k1 == k2

    def test_delete_removes_exactly_the_matching_twin(self, twin_tree):
        assert twin_tree.delete(self.v1)
        assert [repr(o) for o in twin_tree.range_query(self.v1, 0.01)] == []
        assert [repr(o) for o in twin_tree.range_query(self.v2, 0.01)] == [
            repr(self.v2)
        ]
        # Deleting the same twin again finds nothing; the other remains.
        assert not twin_tree.delete(self.v1)
        assert twin_tree.delete(self.v2)
        assert verify_tree(twin_tree).ok

    def test_twins_survive_wal_replay(self, tmp_path):
        v1, v2 = np.array([5.0, 3.0]), np.array([5.0, -3.0])
        pivots = [np.array([0.0, 0.0]), np.array([10.0, 0.0])]
        filler = [np.array([float(i), float(i % 7)]) for i in range(20)]
        tree = SPBTree.build(
            filler, EuclideanDistance(), pivots=pivots, d_plus=20.0
        )
        directory = str(tmp_path / "idx")
        save_tree(tree, directory)
        live = open_tree(directory, EuclideanDistance())
        live.insert(v1)
        live.insert(v2)
        assert live.delete(v1)  # logged as key + exact bytes
        live.wal.close()
        recovered = load_tree(directory, EuclideanDistance())
        assert [repr(o) for o in recovered.range_query(v1, 0.01)] == []
        assert [repr(o) for o in recovered.range_query(v2, 0.01)] == [repr(v2)]
        assert recovered.object_count == 21
        assert verify_tree(recovered).ok

"""Persistence error paths and crash consistency (format v2).

Covers the durability layer's contract: corrupt/truncated catalogs are
rejected with clear errors, digests catch damaged page files, format v1
directories still load, and — the core guarantee — a crash at *any*
page-write or rename boundary during ``save_tree`` leaves either the old
or the new index fully loadable.
"""

import json
import os
import shutil

import pytest

from repro import (
    EditDistance,
    EuclideanDistance,
    FaultInjector,
    SPBTree,
    SimulatedCrash,
    load_tree,
    save_tree,
)
from repro.core.persist import CatalogError
from repro.datasets import generate_words

PAGE = 512


@pytest.fixture(scope="module")
def words():
    return generate_words(150, seed=3)


@pytest.fixture(scope="module")
def tree(words):
    return SPBTree.build(
        words, EditDistance(), num_pivots=3, seed=1, page_size=PAGE
    )


def _catalog(directory):
    with open(os.path.join(directory, "spbtree.json")) as fh:
        return json.load(fh)


def _rewrite_catalog(directory, meta):
    with open(os.path.join(directory, "spbtree.json"), "w") as fh:
        json.dump(meta, fh)


class TestCatalogErrors:
    def test_missing_directory(self):
        with pytest.raises(CatalogError, match="cannot read catalog"):
            load_tree("/nonexistent/spb-dir", EditDistance())

    def test_corrupt_json(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        with open(os.path.join(d, "spbtree.json"), "w") as fh:
            fh.write('{"format_version": 2, "metr')
        with pytest.raises(CatalogError, match="not valid JSON"):
            load_tree(d, EditDistance())

    def test_truncated_catalog(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        with open(os.path.join(d, "spbtree.json"), "w") as fh:
            fh.write("")
        with pytest.raises(CatalogError):
            load_tree(d, EditDistance())

    def test_unsupported_version(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        meta = _catalog(d)
        meta["format_version"] = 99
        _rewrite_catalog(d, meta)
        with pytest.raises(ValueError, match="format version"):
            load_tree(d, EditDistance())

    def test_metric_mismatch(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        with pytest.raises(ValueError, match="metric"):
            load_tree(d, EuclideanDistance())

    def test_unknown_curve_rejected(self, tree, tmp_path):
        # The legacy loader silently fell back to Z-order for any
        # unrecognized curve name; now it must refuse.
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        meta = _catalog(d)
        meta["curve"] = "peano"
        _rewrite_catalog(d, meta)
        with pytest.raises(ValueError, match="unknown curve"):
            load_tree(d, EditDistance())

    def test_digest_mismatch(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        raf_file = os.path.join(d, _catalog(d)["files"]["raf"])
        with open(raf_file, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff\xff\xff")
        with pytest.raises(CatalogError, match="digest mismatch"):
            load_tree(d, EditDistance())

    def test_missing_page_file(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        os.unlink(os.path.join(d, _catalog(d)["files"]["btree"]))
        with pytest.raises(CatalogError, match="cannot read page file"):
            load_tree(d, EditDistance())


class TestFormatV1Compatibility:
    def _save_v1(self, tree, directory):
        """Write the legacy v1 layout: fixed names, no digests."""
        import base64

        os.makedirs(directory, exist_ok=True)
        for pagefile, name in (
            (tree.btree.pagefile, "btree.pages"),
            (tree.raf.pagefile, "raf.pages"),
        ):
            with open(os.path.join(directory, name), "wb") as fh:
                for pid in range(pagefile.num_pages):
                    fh.write(pagefile._pages[pid])
        serializer = tree.raf.serializer
        meta = {
            "format_version": 1,
            "metric_name": tree.distance.metric.name,
            "serializer": serializer.name,
            "curve": tree.curve.name,
            "page_size": tree.btree.pagefile.page_size,
            "cache_pages": tree._cache_pages,
            "d_plus": tree.space.d_plus,
            "delta": tree.space.delta,
            "pivots": [
                base64.b64encode(serializer.serialize(p)).decode("ascii")
                for p in tree.space.pivots
            ],
            "object_count": tree.object_count,
            "next_id": tree._next_id,
            "btree": {
                "root_page": tree.btree.root_page,
                "height": tree.btree.height,
                "entry_count": tree.btree.entry_count,
                "leaf_page_count": tree.btree.leaf_page_count,
            },
            "raf": {
                "end_offset": tree.raf._end_offset,
                "tail_page_id": tree.raf._tail_page_id,
                "tail": base64.b64encode(bytes(tree.raf._tail)).decode("ascii"),
                "object_count": tree.raf.object_count,
                "deleted": sorted(tree.raf._deleted),
            },
            "statistics": {
                "grid_sample": [list(g) for g in tree.grid_sample],
                "sampled_from": tree._sampled_from,
                "pair_distances": tree.pair_distances,
                "distance_exponent": tree.distance_exponent,
                "precision_hint": tree.precision_hint,
                "ndk_corrections": {
                    str(k): v for k, v in tree.ndk_corrections.items()
                },
            },
        }
        _rewrite_catalog(directory, meta)

    def test_v1_round_trip(self, words, tree, tmp_path):
        d = str(tmp_path / "v1")
        self._save_v1(tree, d)
        reopened = load_tree(d, EditDistance())
        q = words[7]
        assert sorted(reopened.range_query(q, 2)) == sorted(tree.range_query(q, 2))
        assert reopened.verify().ok

    def test_v1_unaligned_page_file(self, tree, tmp_path):
        # v1 has no digests, so misalignment is the first thing caught.
        d = str(tmp_path / "v1")
        self._save_v1(tree, d)
        with open(os.path.join(d, "raf.pages"), "ab") as fh:
            fh.write(b"tail garbage")
        with pytest.raises(CatalogError, match="not page aligned"):
            load_tree(d, EditDistance())

    def test_resave_upgrades_and_cleans_v1_files(self, tree, tmp_path):
        d = str(tmp_path / "v1")
        self._save_v1(tree, d)
        upgraded = load_tree(d, EditDistance())
        save_tree(upgraded, d)
        names = set(os.listdir(d))
        assert "btree.pages" not in names and "raf.pages" not in names
        assert _catalog(d)["format_version"] == 2
        assert load_tree(d, EditDistance()).verify().ok


class TestAtomicSave:
    def test_generation_bumps_and_old_files_removed(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        assert _catalog(d)["generation"] == 1
        save_tree(tree, d)
        meta = _catalog(d)
        assert meta["generation"] == 2
        names = set(os.listdir(d))
        assert names == {"spbtree.json", meta["files"]["btree"], meta["files"]["raf"]}

    def test_stale_tmp_files_removed_on_next_save(self, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        stale = os.path.join(d, "btree.7.pages.tmp")
        with open(stale, "wb") as fh:
            fh.write(b"half a page")
        save_tree(tree, d)
        assert not os.path.exists(stale)

    def test_crash_at_every_boundary_leaves_a_loadable_index(
        self, words, tmp_path
    ):
        # Acceptance (b): enumerate every crash point of the save protocol;
        # each must leave either the old or the new index fully loadable.
        old = SPBTree.build(
            words[:60], EditDistance(), num_pivots=3, seed=1, page_size=PAGE
        )
        new = SPBTree.build(
            words, EditDistance(), num_pivots=3, seed=1, page_size=PAGE
        )
        ref = str(tmp_path / "ref")
        save_tree(old, ref)
        counting = FaultInjector()
        probe = str(tmp_path / "probe")
        shutil.copytree(ref, probe)
        save_tree(new, probe, faults=counting)
        total = counting.ops
        assert total > 10  # page writes + renames + cleanup boundaries
        for n in range(total):
            d = str(tmp_path / f"crash{n}")
            shutil.copytree(ref, d)
            with pytest.raises(SimulatedCrash):
                save_tree(new, d, faults=FaultInjector(crash_after=n))
            recovered = load_tree(d, EditDistance())
            assert len(recovered) in (len(old), len(new))
            report = recovered.verify(check_objects=False)
            assert report.ok, (n, report.errors)

    def test_crash_then_resave_recovers(self, words, tree, tmp_path):
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        with pytest.raises(SimulatedCrash):
            save_tree(tree, d, faults=FaultInjector(crash_after=2))
        save_tree(tree, d)  # clean retry after the "reboot"
        reopened = load_tree(d, EditDistance())
        assert len(reopened) == len(tree)
        assert reopened.verify().ok


class TestChecksummedPersistence:
    def test_checksums_survive_round_trip(self, words, tmp_path):
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=3, seed=1,
            page_size=PAGE, checksums=True,
        )
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        assert _catalog(d)["checksums"] is True
        reopened = load_tree(d, EditDistance())
        assert reopened._checksums is True
        assert reopened.btree.pagefile.checksums
        assert reopened.raf.pagefile.checksums
        q = words[3]
        assert sorted(reopened.range_query(q, 2)) == sorted(tree.range_query(q, 2))

    def test_dumped_corruption_stays_detectable(self, words, tmp_path):
        # A page corrupted in memory keeps its stale CRC through dump/load,
        # so the reloaded tree still detects it on read.
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=3, seed=1,
            page_size=PAGE, checksums=True,
        )
        FaultInjector(tree.raf.pagefile, seed=1).tear_page(0, keep=7)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        reopened = load_tree(d, EditDistance())  # digests match the dump
        assert reopened.raf.pagefile.verify_all() == [0]
        assert not reopened.verify().ok

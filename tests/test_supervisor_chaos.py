"""Supervisor chaos: kill the primary under sustained load, converge.

The acceptance proof for the self-healing loop: a writer streams inserts
and readers hammer scatter-gather queries while the supervisor runs;
shard 0's primary is hard-killed mid-stream.  The supervisor must
promote automatically within **two heartbeat timeouts** (fake clock —
the bound is exact, not statistical), the refused writes must replay,
the zombie must rejoin as a healthy follower, and the run must end with
zero acknowledged writes lost and every observability counter
reconciling.  CLI round-trips (``serve --supervise``, ``scrub``,
``shard-status``) ride along under the ``slow`` marker, matching CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import threading

import pytest

from repro import obs
from repro.cluster import ShardedIndex
from repro.obs import instruments
from repro.replication import PrimaryDownError, ReplicatedIndex, replicate
from repro.service.context import QueryContext
from repro.supervisor import SUPERVISOR_JOURNAL, Supervisor, read_journal


class FakeClock:
    def __init__(self, now: float = 500.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def obs_enabled():
    obs.get_registry().reset()  # absolute-value asserts need a clean slate
    obs.enable()
    try:
        yield
    finally:
        obs.disable()


def beat_all(idx, skip=()):
    for sid, rset in idx._sets.items():
        for rid in rset.member_ids():
            if (sid, rid) not in skip:
                idx.monitor.beat(sid, rid)


def test_kill_primary_under_load_converges(
    tmp_path, small_words, edit, obs_enabled
):
    timeout = 4.0
    clock = FakeClock()
    directory = str(tmp_path / "cluster")
    ShardedIndex.build(
        small_words[:200], edit, shards=2, num_pivots=3, seed=11
    ).save(directory)
    replicate(directory, edit, replicas=2, read_policy="round-robin")
    idx = ReplicatedIndex.open(
        directory, edit, wal_fsync=False,
        heartbeat_timeout=timeout, clock=clock,
    )
    sup = Supervisor(idx, scrub_interval=None)
    baseline = set(str(o) for o in idx.objects())
    rset = idx._sets[0]
    p0 = rset.primary.replica_id

    batch = small_words[200:280]
    acked: list[str] = []
    refused: list[str] = []
    errors: list[BaseException] = []
    killed = threading.Event()
    stop_readers = threading.Event()

    def writer():
        try:
            for i, word in enumerate(batch):
                if i == len(batch) // 3:
                    idx.monitor.mark_down(0, p0)
                    killed.set()
                try:
                    idx.insert(word)
                    acked.append(word)
                except PrimaryDownError:
                    refused.append(word)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def reader():
        try:
            i = 0
            while not stop_readers.is_set():
                idx.range_query(
                    small_words[i % 50], 2.0, context=QueryContext()
                )
                i += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(2)
    ]
    for t in threads:
        t.start()
    assert killed.wait(60.0)

    # Drive the control loop against the live workload.  The clock only
    # moves here, so the promotion bound is exact.
    kill_t = clock.now
    promoted_at = None
    for _ in range(30):
        beat_all(idx, skip={(0, p0)})
        if sup.tick()["promoted"]:
            promoted_at = clock.now
            break
        clock.now += 0.5
    assert promoted_at is not None, "no automatic promotion"
    assert promoted_at - kill_t <= 2 * timeout
    assert rset.primary.replica_id != p0

    threads[0].join(60.0)
    stop_readers.set()
    for t in threads[1:]:
        t.join(60.0)
    assert not errors, errors
    assert len(acked) + len(refused) == len(batch)
    assert refused, "no write hit the killed shard"
    assert acked, "the healthy side should have kept accepting"

    # Refused writes go through on retry against the new primary.
    for word in refused:
        idx.insert(word)

    # The stranded survivor rejoined already; now the zombie comes back.
    sup.tick()
    idx.monitor.mark_up(0, p0)
    actions = sup.tick()
    assert (0, p0) in actions["rejoined"]
    status = idx.replication_status()
    for sid, info in status.items():
        assert all(m["healthy"] for m in info["members"]), (sid, info)
        assert all(m["lag_bytes"] == 0 for m in info["members"]), (sid, info)

    # Zero acknowledged writes lost across kill, degradation, promotion.
    survived = set(str(o) for o in idx.objects())
    lost = (baseline | set(acked) | set(refused)) - survived
    assert not lost, f"lost acked writes: {sorted(lost)[:5]}"
    assert idx.verify().ok

    # Every follower's durable log is a byte prefix of the primary's.
    pwal = rset.primary.tree.wal
    with open(pwal.path, "rb") as fh:
        pbytes = fh.read()
    for rep in rset.followers:
        committed = rep.wal.size_in_bytes
        with open(rep.wal.path, "rb") as fh:
            fbytes = fh.read(committed)
        assert fbytes == pbytes[:committed]

    # Exact obs reconciliation: plain tallies and counters agree.
    inst = instruments.supervisor()
    assert inst.ticks.value == sup.ticks
    assert inst.promotions.labels(shard="0").value == 1 == sup.promotions
    # The zombie rejoin is the supervisor's; the stranded survivor may
    # have been re-synced by the write path's own ship instead (the
    # writer kept streaming after the promotion), so >= 1.
    assert inst.rejoins.labels(shard="0").value == sup.rejoins >= 1
    assert inst.repairs.value == sup.repairs == 0
    journal_events = [e["event"] for e in sup.events(100)]
    assert journal_events.count("promoted") == 1
    assert journal_events.count("rejoined") == sup.rejoins
    mttr = [
        e["detail"]["mttr"] for e in sup.events(100)
        if e["event"] == "promoted"
    ][0]
    assert mttr <= 2 * timeout

    sup.close()
    idx.close()

    # The healed cluster reopens clean.
    reopened = ReplicatedIndex.open(directory, edit, wal_fsync=False)
    try:
        assert set(str(o) for o in reopened.objects()) == survived
        assert reopened.verify().ok
    finally:
        reopened.close()


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.slow
class TestCliRoundTrips:
    def test_serve_with_supervisor(self):
        out = run_cli(
            "serve", "--dataset", "words", "--size", "300",
            "--num-queries", "10", "--mutations", "4", "--workers", "2",
            "--shards", "2", "--replicas", "1", "--supervise",
            "--heartbeat-timeout", "30", "--scrub-interval", "5",
        )
        assert out.returncode == 0, out.stderr
        assert "supervising: tick" in out.stdout
        assert "supervisor :" in out.stdout
        assert "replication:" in out.stdout

    def test_serve_supervise_requires_replicas(self):
        out = run_cli(
            "serve", "--dataset", "words", "--size", "200",
            "--num-queries", "2", "--supervise",
        )
        assert out.returncode != 0
        assert "--supervise requires --replicas" in out.stderr

    def test_scrub_detects_page_rot_and_shard_status_reports(
        self, tmp_path
    ):
        directory = str(tmp_path / "cluster")
        out = run_cli(
            "shard-build", "--dataset", "words", "--size", "300",
            "--shards", "2", "--checksums", "--out", directory,
        )
        assert out.returncode == 0, out.stderr
        out = run_cli("replicate", "--dir", directory, "--replicas", "1")
        assert out.returncode == 0, out.stderr

        # A clean cluster scrubs clean.
        out = run_cli("scrub", "--dir", directory)
        assert out.returncode == 0, out.stderr
        assert "clean" in out.stdout
        assert "scrub: OK" in out.stderr

        # Rot one byte of a follower's saved pages *behind* the catalog
        # digest (recomputed, as if the medium decayed after the save):
        # the load-time digest gate passes, only the page CRC knows.
        fdir = os.path.join(directory, "shard-0.r1")
        cat_path = os.path.join(fdir, "spbtree.json")
        with open(cat_path, encoding="utf-8") as fh:
            cat = json.load(fh)
        pages = os.path.join(fdir, cat["files"]["btree"])
        with open(pages, "r+b") as fh:
            fh.seek(64)
            b = fh.read(1)
            fh.seek(64)
            fh.write(bytes([b[0] ^ 0xFF]))
        with open(pages, "rb") as fh:
            cat["digests"]["btree"] = hashlib.sha256(fh.read()).hexdigest()
        with open(cat_path, "w", encoding="utf-8") as fh:
            json.dump(cat, fh)

        out = run_cli("scrub", "--dir", directory)
        assert out.returncode == 0, out.stderr + out.stdout
        assert "page" in out.stdout
        assert "[repaired]" in out.stdout
        assert "scrub: OK" in out.stderr

        # The repair is durable: scrub again, clean; verify passes.
        out = run_cli("scrub", "--dir", directory)
        assert out.returncode == 0
        assert "clean" in out.stdout
        out = run_cli("shard-verify", "--dir", directory)
        assert out.returncode == 0, out.stderr

        # shard-status: one line per shard plus the event journal tail
        # written by the scrub runs above.
        out = run_cli("shard-status", "--dir", directory)
        assert out.returncode == 0, out.stderr
        assert "shard 0: primary r0 up" in out.stdout
        assert "shard 1: primary r0 up" in out.stdout
        assert "supervisor events" in out.stdout
        assert "quarantined" in out.stdout
        assert "shard-status: OK" in out.stderr
        journal = read_journal(os.path.join(directory, SUPERVISOR_JOURNAL))
        assert any(e["event"] == "rebuilt" for e in journal)

    def test_shard_status_fails_on_missing_cluster(self, tmp_path):
        out = run_cli(
            "shard-status", "--dir", str(tmp_path / "nope"),
            "--metric", "edit",
        )
        assert out.returncode == 1
        assert "shard-status: FAILED" in out.stderr

"""Tests for the ablation switches: results must stay correct with every
optimization disabled — the lemmas only *save* work, never change answers."""

import pytest

from repro.baselines import LinearScan
from repro.core.spbtree import SPBTree
from repro.datasets import generate_words
from repro.distance import EditDistance


@pytest.fixture(scope="module")
def setup():
    words = generate_words(400, seed=23)
    metric = EditDistance()
    oracle = LinearScan(words, metric)
    return words, metric, oracle


@pytest.mark.parametrize(
    "lemma2,enumeration",
    [(True, True), (False, True), (True, False), (False, False)],
)
def test_range_correct_under_all_flag_combinations(setup, lemma2, enumeration):
    words, metric, oracle = setup
    tree = SPBTree.build(words, metric, num_pivots=3, seed=1)
    tree.use_lemma2 = lemma2
    tree.use_sfc_enumeration = enumeration
    for q in words[:3]:
        for r in (1, 2, 4):
            assert sorted(tree.range_query(q, r)) == sorted(
                oracle.range_query(q, r)
            )


def test_lemma2_saves_distance_computations(setup):
    """Lemma 2's whole point: fewer compdists at large radii."""
    words, metric, oracle = setup
    with_l2 = SPBTree.build(words, metric, num_pivots=3, seed=1)
    without_l2 = SPBTree.build(words, metric, num_pivots=3, seed=1)
    without_l2.use_lemma2 = False
    with_l2.reset_counters()
    without_l2.reset_counters()
    for q in words[:5]:
        with_l2.range_query(q, 8)
        without_l2.range_query(q, 8)
    assert (
        with_l2.distance_computations <= without_l2.distance_computations
    )


def test_ablation_experiment_runs():
    from repro.experiments import ablation_lemmas

    tables = ablation_lemmas.run(size=150, queries=3)
    assert len(tables) == 2
    for table in tables:
        variants = {row[0] for row in table.rows}
        assert "full SPB-tree" in variants
        assert len(variants) == 5

"""Edge cases and failure modes across subsystems."""

import random

import numpy as np
import pytest

from repro import EditDistance, EuclideanDistance, SPBTree
from repro.core.spbtree import SPBTree as SPB
from repro.datasets import generate_words
from repro.storage import PageFile, RandomAccessFile, StringSerializer


class TestLongStrings:
    def test_myers_beyond_64_chars(self):
        """The bit-parallel edit distance must stay exact past one machine
        word (Python big ints carry the bitmasks)."""

        def reference(a, b):
            prev = list(range(len(b) + 1))
            for i, ca in enumerate(a, 1):
                cur = [i]
                for j, cb in enumerate(b, 1):
                    cur.append(
                        min(
                            prev[j - 1] + (ca != cb),
                            prev[j] + 1,
                            cur[j - 1] + 1,
                        )
                    )
                prev = cur
            return prev[-1]

        ed = EditDistance()
        rng = random.Random(1)
        for _ in range(25):
            a = "".join(rng.choice("abc") for _ in range(rng.randrange(60, 140)))
            b = "".join(rng.choice("abc") for _ in range(rng.randrange(60, 140)))
            assert ed(a, b) == reference(a, b)

    def test_unicode(self):
        ed = EditDistance()
        assert ed("café", "cafe") == 1.0
        assert ed("ααβ", "αβ") == 1.0

    def test_very_long_objects_in_index(self):
        words = ["x" * 5000, "x" * 5001, "y" * 5000] + [
            f"w{i}" for i in range(60)
        ]
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        assert "x" * 5001 in tree.range_query("x" * 5000, 1)


class TestDegenerateDatasets:
    def test_two_objects(self):
        tree = SPBTree.build(["alpha", "beta"], EditDistance(), num_pivots=1, seed=1)
        assert sorted(tree.range_query("alpha", 100)) == ["alpha", "beta"]

    def test_all_equidistant(self):
        """A simplex: every pair at the same distance (1-hot vectors)."""
        data = [np.eye(6)[i] for i in range(6)]
        tree = SPBTree.build(data, EuclideanDistance(), num_pivots=2, seed=1)
        results = tree.range_query(data[0], 1.5)
        assert len(results) == 6

    def test_duplicated_objects_counted(self):
        words = ["same"] * 25 + ["other"]
        tree = SPBTree.build(words, EditDistance(), num_pivots=1, seed=1)
        assert len(tree.range_query("same", 0)) == 25

    def test_query_object_absent_from_dataset(self):
        words = generate_words(100, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        # A query far from everything must return empty, not crash.
        assert tree.range_query("zzzzzzzzzzzzzzzz", 1) == []


class TestStorageFailureModes:
    def test_pagefile_oversized_write(self):
        pf = PageFile(page_size=32)
        pid = pf.allocate()
        with pytest.raises(ValueError):
            pf.write_page(pid, b"a" * 33)

    def test_raf_read_past_end(self):
        raf = RandomAccessFile(StringSerializer(), page_size=32)
        raf.append(0, "word")
        with pytest.raises(IndexError):
            raf.read(10_000)

    def test_empty_payload_round_trip(self):
        raf = RandomAccessFile(StringSerializer(), page_size=32)
        off = raf.append(0, "")
        assert raf.read(off) == (0, "")

    def test_page_exactly_full(self):
        """A record ending exactly on a page boundary must round-trip."""
        raf = RandomAccessFile(StringSerializer(), page_size=32)
        payload = "x" * (32 - 12)  # header is 12 bytes
        off = raf.append(1, payload)
        assert raf.read(off) == (1, payload)


class TestEmptyTreeBehaviour:
    def test_queries_on_unbuilt_tree(self):
        tree = SPB(EditDistance(), ["pivot"], 10.0)
        assert tree.range_query("x", 5) == []
        assert tree.knn_query("x", 3) == []
        assert tree.range_count("x", 5) == 0
        assert not tree.delete("x")

    def test_insert_only_construction(self):
        tree = SPB(EditDistance(), ["pivotword"], 20.0)
        words = generate_words(60, seed=3)
        for w in words:
            tree.insert(w)
        assert len(tree) == 60
        from repro.baselines import LinearScan

        oracle = LinearScan(words, EditDistance())
        q = words[10]
        assert sorted(tree.range_query(q, 2)) == sorted(
            oracle.range_query(q, 2)
        )

"""Functional replication tests: bootstrap, shipping, routing, fencing.

The crash matrix (`test_replication_crash.py`) and chaos suite
(`test_replication_chaos.py`) prove the failure-time guarantees; this
file pins the sunny-day mechanics — replicate a saved cluster, ship
synchronously on every write, route reads by policy, monitor liveness,
fence zombies — plus the catalog loader's rejection of malformed
replica membership.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.cluster import (
    READ_POLICIES,
    ReplicaSelector,
    ShardedIndex,
    load_catalog,
)
from repro.core.persist import CatalogError
from repro.replication import (
    Monitor,
    NoPromotableFollowerError,
    PrimaryDownError,
    ReplicatedIndex,
    ReplicationError,
    replicate,
)
from repro.service.context import QueryContext
from repro.storage.wal import WAL_FILE, StaleWalError, scan_wal


@pytest.fixture(scope="module")
def base_dir(tmp_path_factory, small_words, edit) -> str:
    cluster = ShardedIndex.build(
        small_words[:250], edit, shards=3, num_pivots=3, seed=3
    )
    directory = str(tmp_path_factory.mktemp("repl") / "base")
    cluster.save(directory)
    cluster.close()
    return directory


@pytest.fixture()
def repl_dir(base_dir, tmp_path, edit) -> str:
    directory = str(tmp_path / "cluster")
    shutil.copytree(base_dir, directory)
    replicate(directory, edit, replicas=2, read_policy="round-robin")
    return directory


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------- bootstrap


class TestReplicate:
    def test_creates_follower_dirs_and_catalog_rows(self, repl_dir):
        cat = load_catalog(repl_dir)
        assert cat.read_policy == "round-robin"
        for meta in cat.shards:
            roles = sorted(r.role for r in meta.replicas)
            assert roles == ["follower", "follower", "primary"]
            primary = next(r for r in meta.replicas if r.role == "primary")
            assert primary.directory == meta.directory
            for rep in meta.replicas:
                assert os.path.isdir(os.path.join(repl_dir, rep.directory))

    def test_followers_start_at_primary_position(self, repl_dir, edit):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            for rset in idx._sets.values():
                for rid in rset.member_ids():
                    assert rset.lag(rid) == 0
                for rep in rset.followers:
                    assert (
                        rep.tree.object_count
                        == rset.primary.tree.object_count
                    )
        finally:
            idx.close()

    def test_rejects_double_replicate_and_bad_policy(self, repl_dir, edit):
        with pytest.raises(ReplicationError, match="already"):
            replicate(repl_dir, edit, replicas=1)
        with pytest.raises(ValueError, match="read policy"):
            replicate(repl_dir, edit, read_policy="nearest-dartboard")


# ----------------------------------------------------------------- shipping


class TestShipping:
    def test_every_write_is_on_every_follower_before_return(
        self, repl_dir, edit, small_words
    ):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            for word in small_words[250:300]:
                idx.insert(word)
                # Synchronous contract: zero lag the moment insert returns.
                for rset in idx._sets.values():
                    for rid in rset.member_ids():
                        assert rset.lag(rid) == 0
            for rset in idx._sets.values():
                for rep in rset.followers:
                    assert (
                        rep.tree.object_count
                        == rset.primary.tree.object_count
                    )
        finally:
            idx.close()

    def test_delete_ships_too(self, repl_dir, edit, small_words):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            victim = small_words[0]
            assert idx.delete(victim)
            for rset in idx._sets.values():
                for rep in rset.followers:
                    assert (
                        rep.tree.object_count
                        == rset.primary.tree.object_count
                    )
        finally:
            idx.close()

    def test_down_follower_is_skipped_then_caught_up(
        self, repl_dir, edit, small_words
    ):
        clock = FakeClock()
        idx = ReplicatedIndex.open(repl_dir, edit, clock=clock)
        try:
            sid = sorted(idx._sets)[0]
            rset = idx._sets[sid]
            lagger = rset.followers[0]
            idx.monitor.mark_down(sid, lagger.replica_id)
            for word in small_words[250:290]:
                idx.insert(word)
            shard_writes = rset.lag(lagger.replica_id)
            other = rset.followers[1]
            assert rset.lag(other.replica_id) == 0
            # Recovery: mark up, pump, caught up.
            idx.monitor.mark_up(sid, lagger.replica_id)
            idx.ship_all()
            assert rset.lag(lagger.replica_id) == 0
            if shard_writes:  # at least one write routed to this shard
                assert (
                    lagger.tree.object_count
                    == rset.primary.tree.object_count
                )
        finally:
            idx.close()

    def test_checkpoint_resyncs_followers_to_new_generation(
        self, repl_dir, edit, small_words
    ):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            for word in small_words[250:280]:
                idx.insert(word)
            idx.checkpoint()
            for rset in idx._sets.values():
                pwal = rset.primary.tree.wal
                for rep in rset.followers:
                    assert rep.wal.header is not None
                    assert (
                        rep.wal.header.base_generation
                        == pwal.header.base_generation
                    )
                    assert rset.lag(rep.replica_id) == 0
        finally:
            idx.close()

    def test_reopen_preserves_replication(self, repl_dir, edit, small_words):
        idx = ReplicatedIndex.open(repl_dir, edit)
        for word in small_words[250:270]:
            idx.insert(word)
        count = idx.object_count
        idx.checkpoint()
        idx.close()
        idx2 = ReplicatedIndex.open(repl_dir, edit)
        try:
            assert idx2.object_count == count
            assert sorted(idx2._sets) == sorted(
                s.shard_id for s in idx2.shards
            )
            idx2.insert("zzyzx")
            for rset in idx2._sets.values():
                for rid in rset.member_ids():
                    assert rset.lag(rid) == 0
        finally:
            idx2.close()


# ------------------------------------------------------------ read routing


class TestReadRouting:
    def _members(self):
        return [0, 1, 2]

    def test_primary_only_sticks_to_primary(self):
        sel = ReplicaSelector("primary-only")
        picks = {
            sel.choose(0, self._members(), lambda m: True, lambda m: 0)
            for _ in range(6)
        }
        assert picks == {0}

    def test_primary_only_falls_back_when_primary_down(self):
        sel = ReplicaSelector("primary-only")
        healthy = lambda m: m != 0
        assert sel.choose(0, self._members(), healthy, lambda m: 0) == 1

    def test_round_robin_rotates_healthy_members(self):
        sel = ReplicaSelector("round-robin")
        picks = [
            sel.choose(0, self._members(), lambda m: True, lambda m: 0)
            for _ in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]
        # Per-shard counters: another shard starts its own rotation.
        assert sel.choose(1, self._members(), lambda m: True, lambda m: 0) == 0

    def test_round_robin_skips_unhealthy(self):
        sel = ReplicaSelector("round-robin")
        healthy = lambda m: m != 1
        picks = [
            sel.choose(0, self._members(), healthy, lambda m: 0)
            for _ in range(4)
        ]
        assert picks == [0, 2, 0, 2]

    def test_fastest_mind_picks_least_lag(self):
        sel = ReplicaSelector("fastest-mind")
        lag = {0: 0, 1: 512, 2: 64}.__getitem__
        assert sel.choose(0, self._members(), lambda m: True, lag) == 0
        healthy = lambda m: m != 0
        assert sel.choose(0, self._members(), healthy, lag) == 2

    def test_no_healthy_member_falls_back_to_primary(self):
        for policy in READ_POLICIES:
            sel = ReplicaSelector(policy)
            assert (
                sel.choose(0, self._members(), lambda m: False, lambda m: 0)
                == 0
            )

    def test_cluster_reads_agree_across_policies(
        self, base_dir, tmp_path, edit, small_words
    ):
        """Every policy returns the same answer — followers are exact
        copies — so routing is a throughput knob, not a semantics one."""
        answers = {}
        for policy in READ_POLICIES:
            directory = str(tmp_path / policy)
            shutil.copytree(base_dir, directory)
            replicate(directory, edit, replicas=2, read_policy=policy)
            idx = ReplicatedIndex.open(directory, edit)
            try:
                hits = [
                    sorted(
                        str(o) for o in idx.range_query(small_words[i], 2.0)
                    )
                    for i in range(0, 30, 3)
                ]
                answers[policy] = hits
            finally:
                idx.close()
        assert answers["primary-only"] == answers["round-robin"]
        assert answers["primary-only"] == answers["fastest-mind"]


# -------------------------------------------------------- monitor & quorum


class TestMonitor:
    def test_heartbeat_timeout_marks_down(self):
        clock = FakeClock()
        mon = Monitor(timeout=5.0, clock=clock)
        mon.register(0, 0)
        assert mon.healthy(0, 0)
        clock.now += 5.1
        assert not mon.healthy(0, 0)
        assert mon.check(0, [0]) == [0]
        assert mon.misses == 1
        mon.beat(0, 0)
        assert mon.healthy(0, 0)

    def test_mark_down_overrides_fresh_beats(self):
        mon = Monitor(timeout=1000.0)
        mon.register(0, 2)
        mon.mark_down(0, 2)
        mon.beat(0, 2)
        assert not mon.healthy(0, 2)
        mon.mark_up(0, 2)
        assert mon.healthy(0, 2)

    def test_unknown_member_is_unhealthy(self):
        assert not Monitor().healthy(7, 7)

    def test_degraded_reads_name_the_shard(self, repl_dir, edit, small_words):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            sid = sorted(idx._sets)[0]
            rset = idx._sets[sid]
            idx.monitor.mark_down(sid, rset.primary.replica_id)
            out = idx.range_query(
                small_words[0], 3.0, context=QueryContext()
            )
            assert not out.complete
            assert f"shard {sid}" in str(out.reason)
            assert out.per_shard[sid]["complete"] is False
            # kNN and count degrade the same way.
            out = idx.knn_query(small_words[0], 3, context=QueryContext())
            assert not out.complete and f"shard {sid}" in str(out.reason)
            out = idx.range_count(
                small_words[0], 2.0, context=QueryContext()
            )
            assert not out.complete and f"shard {sid}" in str(out.reason)
        finally:
            idx.close()

    def test_writes_to_down_primary_are_refused(
        self, repl_dir, edit, small_words
    ):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            for sid, rset in idx._sets.items():
                idx.monitor.mark_down(sid, rset.primary.replica_id)
            with pytest.raises(PrimaryDownError, match="shard"):
                for word in small_words[:20]:  # some word hits each shard
                    idx.insert(word)
        finally:
            idx.close()


# ---------------------------------------------------------------- failover


class TestFailover:
    def test_promotes_longest_prefix_and_serves_reads(
        self, repl_dir, edit, small_words
    ):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            for word in small_words[250:290]:
                idx.insert(word)
            expected = sorted(str(o) for o in idx.objects())
            sid = sorted(idx._sets)[0]
            rset = idx._sets[sid]
            old_primary = rset.primary.replica_id
            idx.monitor.mark_down(sid, old_primary)
            info = idx.failover(sid)
            assert info["shard"] == sid
            assert info["promoted"] != old_primary
            assert info["demoted"] == old_primary
            assert rset.primary.replica_id == info["promoted"]
            # No acked write lost; reads are whole again.
            assert sorted(str(o) for o in idx.objects()) == expected
            out = idx.range_query(
                small_words[0], 2.0, context=QueryContext()
            )
            assert out.complete
            # Writes flow through the new primary and ship to survivors.
            idx.insert("postfailover")
            assert idx.verify().ok
        finally:
            idx.close()

    def test_failover_requires_a_healthy_follower(self, repl_dir, edit):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            sid = sorted(idx._sets)[0]
            for rid in idx._sets[sid].member_ids():
                idx.monitor.mark_down(sid, rid)
            with pytest.raises(NoPromotableFollowerError, match=f"shard {sid}"):
                idx.failover(sid)
        finally:
            idx.close()

    def test_unreplicated_shard_cannot_fail_over(self, base_dir, tmp_path, edit):
        directory = str(tmp_path / "plain")
        shutil.copytree(base_dir, directory)
        idx = ReplicatedIndex.open(directory, edit)
        try:
            with pytest.raises(ReplicationError, match="not replicated"):
                idx.failover(idx.shards[0].shard_id)
        finally:
            idx.close()

    def test_zombie_primary_is_fenced(self, repl_dir, edit, small_words):
        """An ex-primary that missed the promotion must be refused at its
        own WAL the moment it tries to write against the new catalog."""
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            sid = sorted(idx._sets)[0]
            rset = idx._sets[sid]
            shard = next(s for s in idx.shards if s.shard_id == sid)
            zombie_tree = shard.tree
            zombie_wal = shard.tree.wal
            idx.monitor.mark_down(sid, rset.primary.replica_id)
            idx.failover(sid)
            # Resurrect the old primary's in-memory state (the zombie):
            # its log predates the promoted generation.
            zombie_tree.wal = zombie_wal
            shard.tree = zombie_tree
            target = next(
                w
                for w in small_words
                if idx.router.shard_for_key(
                    idx.curve.encode(idx.space.grid(w))
                ).shard_id
                == sid
            )
            with pytest.raises(StaleWalError, match="fenced"):
                idx.insert(target + "z" if isinstance(target, str) else target)
        finally:
            idx.close()

    def test_demoted_ex_primary_resyncs_and_discards_tail(
        self, repl_dir, edit, small_words
    ):
        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            sid = sorted(idx._sets)[0]
            rset = idx._sets[sid]
            old_primary = rset.primary.replica_id
            idx.monitor.mark_down(sid, old_primary)
            idx.failover(sid)
            # The ex-primary comes back as a follower with a stale log.
            idx.monitor.mark_up(sid, old_primary)
            demoted = next(
                r for r in rset.followers if r.replica_id == old_primary
            )
            assert (
                demoted.wal.header.base_generation
                < rset.primary.tree.wal.header.base_generation
            )
            idx.ship_all()  # triggers the re-sync
            assert (
                demoted.wal.header.base_generation
                == rset.primary.tree.wal.header.base_generation
            )
            assert rset.lag(old_primary) == 0
            assert (
                demoted.tree.object_count == rset.primary.tree.object_count
            )
        finally:
            idx.close()

    def test_failover_survives_reopen(self, repl_dir, edit, small_words):
        idx = ReplicatedIndex.open(repl_dir, edit)
        for word in small_words[250:270]:
            idx.insert(word)
        expected = sorted(str(o) for o in idx.objects())
        sid = sorted(idx._sets)[0]
        idx.monitor.mark_down(sid, idx._sets[sid].primary.replica_id)
        info = idx.failover(sid)
        idx.close()
        idx2 = ReplicatedIndex.open(repl_dir, edit)
        try:
            assert sorted(str(o) for o in idx2.objects()) == expected
            assert (
                idx2._sets[sid].primary.replica_id == info["promoted"]
            )
            assert idx2.verify().ok
        finally:
            idx2.close()


# ------------------------------------------------------------------ engine


class TestEngineTasks:
    def test_ship_and_failover_through_the_engine(
        self, repl_dir, edit, small_words
    ):
        from repro.service import QueryEngine

        idx = ReplicatedIndex.open(repl_dir, edit)
        try:
            with QueryEngine(idx, workers=2) as engine:
                engine.submit("insert", small_words[250]).result()
                shipped = engine.submit("ship").result()
                assert sorted(shipped) == sorted(idx._sets)
                sid = sorted(idx._sets)[0]
                idx.monitor.mark_down(sid, idx._sets[sid].primary.replica_id)
                info = engine.submit("failover", sid).result()
                assert info["shard"] == sid
                out = engine.submit(
                    "range", small_words[0], 2.0
                ).result()
                assert out.complete
        finally:
            idx.close()

    def test_replica_tasks_need_a_replicated_cluster(self, small_words, edit):
        from repro.core.spbtree import SPBTree
        from repro.service import QueryEngine

        tree = SPBTree.build(small_words[:60], edit, seed=2)
        with QueryEngine(tree, workers=1) as engine:
            with pytest.raises(ValueError, match="replicated cluster"):
                engine.submit("ship").result()
            with pytest.raises(ValueError, match="replicated cluster"):
                engine.submit("failover", 0).result()


# ------------------------------------------- catalog loader rejections (S4)


class TestCatalogRejections:
    def _mutate(self, directory: str, fn) -> None:
        path = os.path.join(directory, "cluster.json")
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        fn(payload)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)

    def test_replica_dir_missing(self, repl_dir, edit):
        cat = load_catalog(repl_dir)
        victim = cat.shards[0]
        gone = victim.replicas[1].directory
        shutil.rmtree(os.path.join(repl_dir, gone))
        with pytest.raises(
            CatalogError, match=rf"shard {victim.shard_id}.*missing"
        ):
            load_catalog(repl_dir)

    def test_two_primaries_for_one_shard(self, repl_dir, edit):
        cat = load_catalog(repl_dir)
        sid = cat.shards[0].shard_id

        def promote_everyone(payload):
            for row in payload["shards"]:
                if row["id"] == sid:
                    row["replicas"][1]["role"] = "primary"

        self._mutate(repl_dir, promote_everyone)
        with pytest.raises(
            CatalogError, match=rf"shard {sid} has 2 primary"
        ):
            load_catalog(repl_dir)

    def test_zero_primaries_for_one_shard(self, repl_dir, edit):
        cat = load_catalog(repl_dir)
        sid = cat.shards[0].shard_id

        def demote_everyone(payload):
            for row in payload["shards"]:
                if row["id"] == sid:
                    for rep in row["replicas"]:
                        rep["role"] = "follower"

        self._mutate(repl_dir, demote_everyone)
        with pytest.raises(
            CatalogError, match=rf"shard {sid} has 0 primary"
        ):
            load_catalog(repl_dir)

    def test_acked_beyond_primary_wal_length(self, repl_dir, edit):
        """A follower claiming an acked position past the primary's valid
        log is lying about durability — refuse, naming the shard.  The
        generation must match for the check to fire (stale positions are
        legitimately ignored)."""
        # Give shard WALs real content first.
        idx = ReplicatedIndex.open(repl_dir, edit)
        idx.insert("ackfuzz")
        idx.close()
        cat = load_catalog(repl_dir)
        victim = next(s for s in cat.shards if s.replicas)
        sid = victim.shard_id
        wal_path = os.path.join(repl_dir, victim.directory, WAL_FILE)
        header, _, valid_end, _ = scan_wal(wal_path)
        assert header is not None

        def overclaim(payload):
            for row in payload["shards"]:
                if row["id"] == sid:
                    rep = next(
                        r
                        for r in row["replicas"]
                        if r["role"] == "follower"
                    )
                    rep["acked_gen"] = header.base_generation
                    rep["acked"] = valid_end + 64

        self._mutate(repl_dir, overclaim)
        with pytest.raises(
            CatalogError, match=rf"shard {sid}.*beyond the primary"
        ):
            load_catalog(repl_dir)

    def test_stale_generation_acked_position_is_ignored(self, repl_dir, edit):
        """The same overclaimed offset under a *mismatched* generation is
        stale bookkeeping (checkpoint raced the catalog write) and must
        load fine."""
        cat = load_catalog(repl_dir)
        victim = next(s for s in cat.shards if s.replicas)
        sid = victim.shard_id
        wal_path = os.path.join(repl_dir, victim.directory, WAL_FILE)
        header, _, valid_end, _ = scan_wal(wal_path)

        def stale_overclaim(payload):
            for row in payload["shards"]:
                if row["id"] == sid:
                    rep = next(
                        r
                        for r in row["replicas"]
                        if r["role"] == "follower"
                    )
                    gen = header.base_generation if header else 0
                    rep["acked_gen"] = gen + 7
                    rep["acked"] = valid_end + 4096

        self._mutate(repl_dir, stale_overclaim)
        load_catalog(repl_dir)  # no error

    def test_unknown_role_and_duplicate_ids(self, repl_dir, edit):
        cat = load_catalog(repl_dir)
        sid = cat.shards[0].shard_id

        def bad_role(payload):
            for row in payload["shards"]:
                if row["id"] == sid:
                    row["replicas"][1]["role"] = "observer"

        self._mutate(repl_dir, bad_role)
        with pytest.raises(
            CatalogError, match=rf"shard {sid}.*unknown role"
        ):
            load_catalog(repl_dir)

    def test_unknown_read_policy_rejected(self, repl_dir, edit):
        self._mutate(
            repl_dir,
            lambda payload: payload.__setitem__("read_policy", "psychic"),
        )
        with pytest.raises(CatalogError, match="read policy"):
            load_catalog(repl_dir)

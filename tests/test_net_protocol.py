"""Tests for the wire protocol codec (repro.net.protocol)."""

from __future__ import annotations

import pytest

from repro.cluster.sharded import ShardExhaustion
from repro.net import protocol
from repro.service import QueryResult
from repro.service.context import ExhaustionReason


class TestFraming:
    def test_roundtrip(self):
        message = {"v": 1, "id": 7, "op": "knn", "args": {"k": 3}}
        data = protocol.encode_frame(message)
        decoded, consumed = protocol.decode_frame(data)
        assert decoded == message
        assert consumed == len(data)

    def test_decode_leaves_trailing_bytes(self):
        a = protocol.encode_frame({"id": 1})
        b = protocol.encode_frame({"id": 2})
        decoded, consumed = protocol.decode_frame(a + b)
        assert decoded == {"id": 1}
        decoded2, _ = protocol.decode_frame((a + b)[consumed:])
        assert decoded2 == {"id": 2}

    def test_oversized_payload_refused_on_encode(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_frame({"blob": "x" * 128}, max_frame=64)

    def test_corrupt_length_prefix_refused_before_allocation(self):
        # A hostile prefix claiming 4 GB must be rejected from the 4
        # prefix bytes alone, never honoured with an allocation.
        with pytest.raises(protocol.ProtocolError):
            protocol.check_frame_length(0xFFFFFFF0)
        with pytest.raises(protocol.ProtocolError):
            protocol.check_frame_length(0)
        protocol.check_frame_length(1)
        protocol.check_frame_length(protocol.MAX_FRAME)

    def test_short_frame_is_protocol_error(self):
        data = protocol.encode_frame({"id": 1})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(data[:-1])
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(data[:2])

    def test_non_json_payload_is_protocol_error(self):
        bad = protocol._PREFIX.pack(4) + b"\xff\xfe\x00\x01"
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(bad)

    def test_non_object_payload_is_protocol_error(self):
        bad = protocol._PREFIX.pack(2) + b"42"
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(bad)


class TestObjectCodec:
    @pytest.mark.parametrize(
        "obj",
        [
            "defoliate",
            3,
            2.5,
            True,
            None,
            (1.0, 2.5, -3.0),
            b"\x00\x01\xff",
            frozenset({"a", "b"}),
            ((1, 2), (3, 4)),
        ],
    )
    def test_roundtrip(self, obj):
        import json

        encoded = protocol.obj_to_json(obj)
        # Must survive actual JSON serialization, not just the dict form.
        rewired = json.loads(json.dumps(encoded))
        assert protocol.obj_from_json(rewired) == obj

    def test_lists_come_back_as_tuples(self):
        assert protocol.obj_from_json([1.0, 2.0]) == (1.0, 2.0)

    def test_ndarray_crosses_the_wire_as_a_queryable_vector(self):
        import json

        import numpy as np

        from repro.distance import EuclideanDistance

        vec = np.array([1.5, -2.0, 0.25])
        encoded = json.loads(json.dumps(protocol.obj_to_json(vec)))
        back = protocol.obj_from_json(encoded)
        assert back == (1.5, -2.0, 0.25)
        # The decoded tuple is metrically identical to the original.
        assert EuclideanDistance()(vec, back) == 0.0

    def test_unencodable_object_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.obj_to_json(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.obj_from_json({"__mystery__": 1})


class TestReasonCodec:
    """Satellite: ExhaustionReason/ShardExhaustion JSON round-trips."""

    def test_none_roundtrip(self):
        assert protocol.reason_to_json(None) is None
        assert protocol.reason_from_json(None) is None

    def test_plain_reason_roundtrip(self):
        reason = ExhaustionReason("compdists", 100, 101)
        back = protocol.reason_from_json(protocol.reason_to_json(reason))
        assert type(back) is ExhaustionReason
        assert back == reason

    def test_shard_reason_roundtrip(self):
        reason = ShardExhaustion("page_accesses", 8, 9, shard=3)
        back = protocol.reason_from_json(protocol.reason_to_json(reason))
        assert type(back) is ShardExhaustion
        assert back == reason
        assert back.shard == 3

    def test_quorum_reason_roundtrip_names_the_shard(self):
        # The replication layer reports quorum loss as kind="quorum" on
        # the affected shard; the wire must keep both facts.
        reason = ShardExhaustion("quorum", 2, 1, shard=1)
        back = protocol.reason_from_json(protocol.reason_to_json(reason))
        assert type(back) is ShardExhaustion
        assert back == reason
        assert back.kind == "quorum" and back.shard == 1
        assert "shard 1" in str(back)

    def test_malformed_reason_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.reason_from_json({"kind": "deadline"})


class TestResultCodec:
    def test_knn_roundtrip(self):
        reason = ExhaustionReason("deadline", 0.05, 0.06)
        result = QueryResult(
            [(1.0, "aa"), (2.0, "bb")], complete=False, reason=reason
        )
        back = protocol.result_from_json(
            "knn", protocol.result_to_json("knn", result)
        )
        assert list(back) == [(1.0, "aa"), (2.0, "bb")]
        assert back.complete is False
        assert back.reason == reason

    def test_range_roundtrip(self):
        result = QueryResult(["aa", "bb"], complete=True)
        back = protocol.result_from_json(
            "range", protocol.result_to_json("range", result)
        )
        assert list(back) == ["aa", "bb"]
        assert back.complete is True and back.reason is None

    def test_count_roundtrip_keeps_lower_bound(self):
        result = QueryResult(
            [], complete=False, count=17,
            reason=ExhaustionReason("page_accesses", 4, 5),
        )
        back = protocol.result_from_json(
            "count", protocol.result_to_json("count", result)
        )
        assert back.count == 17 and not back.complete

    def test_mutation_result_is_bool(self):
        assert protocol.result_to_json("insert", True) is True
        assert protocol.result_from_json("delete", False) is False

    def test_malformed_result_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.result_from_json("knn", "not-a-dict")


class TestRequestValidation:
    def _request(self, **overrides):
        message = protocol.make_request(1, "knn", {"k": 2})
        message.update(overrides)
        return message

    def test_valid_request_passes(self):
        protocol.validate_request(self._request())

    def test_wrong_version_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(self._request(v=99))

    def test_unknown_op_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(self._request(op="drop_tables"))

    def test_bad_deadline_refused(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(self._request(deadline_ms=-5))
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(self._request(deadline_ms="soon"))

    def test_error_shape_carries_hints(self):
        error = protocol.make_error(
            3, "RETRY_LATER", "queue full", queue_depth=16, retry_after_ms=12.5
        )
        assert error["ok"] is False
        assert error["error"]["queue_depth"] == 16
        assert error["error"]["retry_after_ms"] == 12.5
        # None-valued hints are omitted, not serialized as null.
        error2 = protocol.make_error(3, "RETRY_LATER", "m", queue_depth=None)
        assert "queue_depth" not in error2["error"]

"""Sharded SPB-tree cluster: routing, exactness, persistence, degradation.

The contract under test: a cluster of N shards answers every query with
*exactly* the result a single SPB-tree over the same objects would return —
scatter-gather, shard pruning, and budget splitting must never change the
answer, only the cost.  On clusterable data the Router's shard-level
Lemma 1/2/3 pruning must keep the cluster's distance computations within
5% of the single tree's.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cluster import (
    CLUSTER_FILE,
    ClusterResult,
    ShardExhaustion,
    ShardedIndex,
    load_catalog,
)
from repro.core.persist import CatalogError
from repro.core.spbtree import SPBTree
from repro.obs.trace import QueryTrace
from repro.service import QueryContext, QueryEngine


# --------------------------------------------------------------------------
# Fixtures: the same objects, indexed once as a single tree and once as a
# cluster, so every test can compare answers side by side.


@pytest.fixture(scope="module")
def blob_vectors() -> list[np.ndarray]:
    """Four well-separated Gaussian blobs: data where shard pruning bites."""
    rng = np.random.default_rng(11)
    centers = [
        np.array([0.0, 0.0, 0.0, 0.0]),
        np.array([8.0, 0.0, 0.0, 0.0]),
        np.array([0.0, 8.0, 0.0, 0.0]),
        np.array([8.0, 8.0, 0.0, 0.0]),
    ]
    out = []
    for c in centers:
        for _ in range(120):
            out.append(c + rng.normal(scale=0.6, size=4))
    return out


@pytest.fixture(scope="module")
def word_tree(small_words, edit) -> SPBTree:
    return SPBTree.build(small_words, edit, num_pivots=3, seed=1)


@pytest.fixture(scope="module")
def word_cluster(small_words, edit) -> ShardedIndex:
    return ShardedIndex.build(
        small_words, edit, shards=4, num_pivots=3, seed=1
    )


@pytest.fixture(scope="module")
def blob_tree(blob_vectors, l2) -> SPBTree:
    return SPBTree.build(blob_vectors, l2, num_pivots=4, seed=1)


@pytest.fixture(scope="module")
def blob_cluster(blob_vectors, l2) -> ShardedIndex:
    return ShardedIndex.build(
        blob_vectors, l2, shards=4, num_pivots=4, seed=1
    )


def _ids(objs) -> list:
    return sorted(str(o) for o in objs)


# --------------------------------------------------------------------------
# Construction and routing.


class TestBuild:
    def test_shards_partition_the_dataset(self, word_cluster, small_words):
        assert word_cluster.num_shards == 4
        assert word_cluster.object_count == len(small_words)
        assert sum(s.tree.object_count for s in word_cluster.shards) == len(
            small_words
        )

    def test_ranges_are_contiguous_and_covering(self, word_cluster):
        shards = word_cluster.shards
        assert shards[0].key_lo == 0
        assert shards[-1].key_hi == word_cluster.curve.max_value
        for prev, cur in zip(shards, shards[1:]):
            assert prev.key_hi == cur.key_lo

    def test_every_object_routes_to_its_own_shard(self, word_cluster):
        for shard in word_cluster.shards:
            for key, _ in shard.tree.keyed_objects():
                owner = word_cluster.router.shard_for_key(key)
                assert owner.shard_id == shard.shard_id

    def test_more_shards_than_distinct_keys_collapses(self, edit):
        # Ten copies of two words → at most two distinct SFC keys.
        objs = ["aaa", "bbb"] * 10
        cluster = ShardedIndex.build(objs, edit, shards=8, num_pivots=1, seed=1)
        assert cluster.num_shards <= 2
        assert cluster.object_count == 20

    def test_objects_stream_in_global_sfc_order(self, word_cluster):
        keys = []
        for shard in word_cluster.shards:
            keys.extend(k for k, _ in shard.tree.keyed_objects())
        assert keys == sorted(keys)
        assert len(list(word_cluster.objects())) == word_cluster.object_count


class TestWrites:
    def test_insert_routes_to_one_shard_and_is_queryable(
        self, small_words, edit
    ):
        cluster = ShardedIndex.build(
            small_words[:100], edit, shards=3, num_pivots=3, seed=1
        )
        before = [s.tree.object_count for s in cluster.shards]
        cluster.insert("zzyzx")
        after = [s.tree.object_count for s in cluster.shards]
        assert sum(after) == sum(before) + 1
        assert sum(1 for b, a in zip(before, after) if a != b) == 1
        hits = cluster.range_query("zzyzx", 0)
        assert "zzyzx" in list(hits)

    def test_delete_routes_and_removes(self, small_words, edit):
        cluster = ShardedIndex.build(
            small_words[:100], edit, shards=3, num_pivots=3, seed=1
        )
        victim = small_words[5]
        assert cluster.delete(victim)
        assert not cluster.delete(victim)
        assert victim not in list(cluster.range_query(victim, 0))


# --------------------------------------------------------------------------
# Exactness: cluster answers must equal the single tree's.


class TestExactness:
    RADII = [1, 2, 3]
    KS = [1, 5, 12]

    def test_range_set_equal_words(self, word_tree, word_cluster, small_words):
        for q in small_words[::37]:
            for r in self.RADII:
                single = set(word_tree.range_query(q, r))
                sharded = set(word_cluster.range_query(q, r))
                assert sharded == single, (q, r)

    def test_range_set_equal_blobs(self, blob_tree, blob_cluster, blob_vectors):
        for q in blob_vectors[::53]:
            for r in (0.5, 1.5, 4.0):
                single = _ids(blob_tree.range_query(q, r))
                sharded = _ids(blob_cluster.range_query(q, r))
                assert sharded == single

    def test_count_matches_range(self, word_tree, word_cluster, small_words):
        for q in small_words[::61]:
            for r in self.RADII:
                expected = len(word_tree.range_query(q, r))
                assert word_cluster.range_count(q, r) == expected
                ctx = QueryContext()
                out = word_cluster.range_count(q, r, context=ctx)
                assert out.count == expected

    @pytest.mark.parametrize("strategy", ["best-first", "broadcast"])
    def test_knn_distances_equal(
        self, strategy, word_tree, word_cluster, small_words
    ):
        for q in small_words[::41]:
            for k in self.KS:
                single = [d for d, _ in word_tree.knn_query(q, k)]
                sharded = [
                    d
                    for d, _ in word_cluster.knn_query(q, k, strategy=strategy)
                ]
                assert sharded == single, (q, k, strategy)

    @pytest.mark.parametrize("strategy", ["best-first", "broadcast"])
    def test_knn_distances_equal_blobs(
        self, strategy, blob_tree, blob_cluster, blob_vectors
    ):
        for q in blob_vectors[::97]:
            single = [d for d, _ in blob_tree.knn_query(q, 10)]
            sharded = [
                d for d, _ in blob_cluster.knn_query(q, 10, strategy=strategy)
            ]
            assert sharded == pytest.approx(single)

    def test_exactness_under_engine_scatter(
        self, word_tree, word_cluster, small_words
    ):
        """Scatter through the QueryEngine's pool changes nothing."""
        with QueryEngine(word_cluster, workers=3) as engine:
            for q in small_words[::83]:
                ctx = QueryContext()
                got = word_cluster.range_query(
                    q, 2, context=ctx, engine=engine
                )
                assert set(got) == set(word_tree.range_query(q, 2))
                ctx2 = QueryContext()
                knn = word_cluster.knn_query(
                    q, 8, context=ctx2, engine=engine, strategy="broadcast"
                )
                assert [d for d, _ in knn] == [
                    d for d, _ in word_tree.knn_query(q, 8)
                ]


class TestPruningEfficiency:
    def test_shards_are_pruned_on_clustered_data(
        self, blob_cluster, blob_vectors
    ):
        pruned = 0
        for q in blob_vectors[::53]:
            ctx = QueryContext()
            out = blob_cluster.range_query(q, 1.5, context=ctx)
            assert isinstance(out, ClusterResult)
            pruned += out.shards_pruned
        assert pruned > 0

    def test_cluster_compdists_close_to_single_tree(
        self, blob_tree, blob_cluster, blob_vectors
    ):
        """When shard pruning applies, scatter costs ≤ 1.05× the single tree."""
        queries = blob_vectors[::29]
        blob_tree.reset_counters()
        blob_cluster.reset_counters()
        pruned = 0
        for q in queries:
            blob_tree.range_query(q, 1.5)
            blob_tree.knn_query(q, 10)
            ctx = QueryContext()
            pruned += blob_cluster.range_query(q, 1.5, context=ctx).shards_pruned
            ctx2 = QueryContext()
            pruned += blob_cluster.knn_query(q, 10, context=ctx2).shards_pruned
        assert pruned > 0, "expected shard-level pruning on blob data"
        single = blob_tree.distance_computations
        sharded = blob_cluster.distance_computations
        assert sharded <= single * 1.05, (sharded, single)


# --------------------------------------------------------------------------
# Budgets, degradation, tracing.


class TestDegradation:
    def test_exhaustion_names_the_shard(self, word_cluster, small_words):
        ctx = QueryContext.with_limits(max_compdists=10)
        out = word_cluster.range_query(small_words[0], 3, context=ctx)
        assert not out.complete
        assert isinstance(out.reason, ShardExhaustion)
        assert str(out.reason).startswith("shard ")
        assert out.reason.shard >= 0

    def test_partial_knn_is_a_confirmed_prefix(
        self, word_tree, word_cluster, small_words
    ):
        q = small_words[7]
        true = [d for d, _ in word_tree.knn_query(q, 10)]
        for budget in (5, 20, 60, 150):
            ctx = QueryContext.with_limits(max_compdists=budget)
            out = word_cluster.knn_query(q, 10, context=ctx)
            got = [d for d, _ in out]
            assert got == true[: len(got)], (budget, got, true)
            if not out.complete:
                assert len(got) < 10 or out.frontier is not None

    def test_partial_merge_propagates_incomplete(
        self, word_cluster, small_words
    ):
        ctx = QueryContext.with_limits(max_compdists=25)
        out = word_cluster.range_query(small_words[3], 3, context=ctx)
        assert not out.complete
        incomplete = [
            s for s in out.per_shard.values() if not s["complete"]
        ]
        assert incomplete, "some visited shard must report exhaustion"

    def test_strict_mode_raises_after_merge(self, word_cluster, small_words):
        from repro.service import BudgetExceeded

        ctx = QueryContext.with_limits(max_compdists=10, strict=True)
        with pytest.raises(BudgetExceeded):
            word_cluster.range_query(small_words[0], 3, context=ctx)

    def test_sub_budgets_never_exceed_the_global_budget(
        self, word_cluster, small_words
    ):
        for budget in (17, 40, 90):
            ctx = QueryContext.with_limits(max_compdists=budget)
            word_cluster.range_query(small_words[9], 3, context=ctx)
            # Each shard may overshoot its slice by at most one checkpoint
            # interval; the merged total stays near the global budget.
            assert ctx.compdists <= budget + word_cluster.num_shards * 2


class TestTracing:
    @pytest.mark.parametrize("kind", ["range", "knn", "count"])
    def test_per_shard_spans_reconcile_exactly(
        self, kind, word_cluster, small_words
    ):
        ctx = QueryContext(trace=QueryTrace())
        q = small_words[13]
        if kind == "range":
            word_cluster.range_query(q, 2, context=ctx)
        elif kind == "knn":
            word_cluster.knn_query(q, 8, context=ctx)
        else:
            word_cluster.range_count(q, 2, context=ctx)
        cd, pa = ctx.trace.attributed_totals()
        assert cd == ctx.compdists
        assert pa == ctx.page_accesses
        names = [s.name for s in ctx.trace.root.children]
        assert "map" in names
        assert any(n.startswith("shard-") for n in names)


# --------------------------------------------------------------------------
# Persistence: save/load/open, WAL replay, checkpoint, catalog validation.


class TestPersistence:
    def test_save_load_round_trip(self, word_cluster, edit, tmp_path):
        directory = str(tmp_path / "clu")
        word_cluster.save(directory)
        loaded = ShardedIndex.load(directory, edit)
        assert loaded.num_shards == word_cluster.num_shards
        assert _ids(loaded.objects()) == _ids(word_cluster.objects())
        assert [
            (s.shard_id, s.key_lo, s.key_hi) for s in loaded.shards
        ] == [(s.shard_id, s.key_lo, s.key_hi) for s in word_cluster.shards]

    def test_loaded_cluster_answers_identically(
        self, word_cluster, edit, small_words, tmp_path
    ):
        directory = str(tmp_path / "clu")
        word_cluster.save(directory)
        loaded = ShardedIndex.load(directory, edit)
        for q in small_words[::101]:
            assert set(loaded.range_query(q, 2)) == set(
                word_cluster.range_query(q, 2)
            )

    def test_metric_mismatch_is_rejected(self, word_cluster, l2, tmp_path):
        directory = str(tmp_path / "clu")
        word_cluster.save(directory)
        with pytest.raises(ValueError):
            ShardedIndex.load(directory, l2)

    def test_open_replays_each_shards_wal(self, small_words, edit, tmp_path):
        directory = str(tmp_path / "clu")
        cluster = ShardedIndex.build(
            small_words[:120], edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        opened = ShardedIndex.open(directory, edit)
        opened.insert("zzyzx")
        opened.insert("syzygy")
        assert opened.delete(small_words[2])
        opened.close()  # no checkpoint: mutations live only in the WALs
        replayed = ShardedIndex.open(directory, edit)
        try:
            live = _ids(replayed.objects())
            assert "zzyzx" in live and "syzygy" in live
            assert str(small_words[2]) not in live
            assert replayed.object_count == 121
        finally:
            replayed.close()

    def test_checkpoint_folds_wals(self, small_words, edit, tmp_path):
        directory = str(tmp_path / "clu")
        cluster = ShardedIndex.build(
            small_words[:120], edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        opened = ShardedIndex.open(directory, edit)
        opened.insert("zzyzx")
        opened.checkpoint()
        opened.close()
        loaded = ShardedIndex.load(directory, edit, replay_wal=False)
        assert "zzyzx" in _ids(loaded.objects())
        report = loaded.verify()
        assert report.ok, report.errors


class TestCatalogValidation:
    def _tamper(self, directory, mutate):
        path = os.path.join(directory, CLUSTER_FILE)
        with open(path) as fh:
            payload = json.load(fh)
        mutate(payload)
        with open(path, "w") as fh:
            json.dump(payload, fh)

    @pytest.fixture()
    def saved(self, word_cluster, tmp_path) -> str:
        directory = str(tmp_path / "clu")
        word_cluster.save(directory)
        return directory

    def test_missing_catalog(self, tmp_path):
        with pytest.raises(CatalogError):
            load_catalog(str(tmp_path / "nope"))

    def test_wrong_kind(self, saved):
        self._tamper(saved, lambda p: p.update(kind="spb-tree"))
        with pytest.raises(CatalogError):
            load_catalog(saved)

    def test_gap_in_ranges(self, saved):
        def mutate(p):
            p["shards"][1]["key_lo"] += 7

        self._tamper(saved, mutate)
        with pytest.raises(CatalogError, match="not contiguous"):
            load_catalog(saved)

    def test_duplicate_shard_ids(self, saved):
        def mutate(p):
            p["shards"][1]["id"] = p["shards"][0]["id"]

        self._tamper(saved, mutate)
        with pytest.raises(CatalogError, match="duplicate"):
            load_catalog(saved)

    def test_escaping_directory_name(self, saved):
        def mutate(p):
            p["shards"][0]["dir"] = "../evil"

        self._tamper(saved, mutate)
        with pytest.raises(CatalogError, match="bare"):
            load_catalog(saved)


# --------------------------------------------------------------------------
# Rebalancing and verification.


class TestRebalance:
    def _fresh(self, small_words, edit, tmp_path, name) -> ShardedIndex:
        directory = str(tmp_path / name)
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        return ShardedIndex.load(directory, edit)

    def test_split_preserves_objects_and_answers(
        self, small_words, edit, tmp_path, word_tree
    ):
        cluster = self._fresh(small_words, edit, tmp_path, "split")
        fattest = max(cluster.shards, key=lambda s: s.tree.object_count)
        action = cluster.rebalance(split=fattest.shard_id)
        assert action["action"] == "split"
        assert cluster.num_shards == 4
        assert cluster.object_count == len(small_words)
        assert cluster.verify().ok
        for q in small_words[::97]:
            assert set(cluster.range_query(q, 2)) == set(
                word_tree.range_query(q, 2)
            )

    def test_merge_preserves_objects_and_answers(
        self, small_words, edit, tmp_path, word_tree
    ):
        cluster = self._fresh(small_words, edit, tmp_path, "merge")
        a, b = cluster.shards[0], cluster.shards[1]
        action = cluster.rebalance(merge=(a.shard_id, b.shard_id))
        assert action["action"] == "merge"
        assert cluster.num_shards == 2
        assert cluster.object_count == len(small_words)
        assert cluster.verify().ok
        for q in small_words[::97]:
            assert [d for d, _ in cluster.knn_query(q, 8)] == [
                d for d, _ in word_tree.knn_query(q, 8)
            ]

    def test_merge_requires_adjacency(self, small_words, edit, tmp_path):
        cluster = self._fresh(small_words, edit, tmp_path, "nonadj")
        a, c = cluster.shards[0], cluster.shards[2]
        with pytest.raises(ValueError, match="adjacent"):
            cluster.rebalance(merge=(a.shard_id, c.shard_id))

    def test_split_and_merge_are_mutually_exclusive(
        self, small_words, edit, tmp_path
    ):
        cluster = self._fresh(small_words, edit, tmp_path, "both")
        with pytest.raises(ValueError):
            cluster.rebalance(split=0, merge=(0, 1))

    def test_auto_plan_splits_a_hot_shard(self, small_words, edit, tmp_path):
        directory = str(tmp_path / "hot")
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        cluster = ShardedIndex.load(directory, edit)
        # Overload one shard far past 2× the average.
        hot = cluster.shards[1]
        extra = [w + "x" for w in small_words[:200]]
        for w in extra:
            key = cluster.curve.encode(cluster.space.grid(w))
            if hot.key_lo <= key < hot.key_hi:
                cluster.insert(w)
        if hot.tree.object_count >= 2 * (cluster.object_count / 3):
            action = cluster.rebalance()
            assert action is not None and action["action"] == "split"
            assert cluster.verify().ok

    def test_rebalance_survives_reload(self, small_words, edit, tmp_path):
        directory = str(tmp_path / "persisted")
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        cluster = ShardedIndex.load(directory, edit)
        fattest = max(cluster.shards, key=lambda s: s.tree.object_count)
        cluster.rebalance(split=fattest.shard_id)
        expect = [(s.shard_id, s.key_lo, s.key_hi) for s in cluster.shards]
        reloaded = ShardedIndex.load(directory, edit)
        assert [
            (s.shard_id, s.key_lo, s.key_hi) for s in reloaded.shards
        ] == expect
        assert reloaded.object_count == len(small_words)
        assert reloaded.verify().ok
        # The replaced shard's directory is gone from disk.
        dirs = {d for d in os.listdir(directory) if d.startswith("shard-")}
        assert dirs == {s.dirname for s in reloaded.shards}


class TestClusterVerify:
    def test_good_cluster_verifies(self, word_cluster):
        report = word_cluster.verify()
        assert report.ok, report.errors
        assert report.shards_checked == word_cluster.num_shards
        assert report.objects_checked == word_cluster.object_count

    def test_verify_does_not_disturb_page_counters(self, word_cluster):
        before = word_cluster.page_accesses
        word_cluster.verify()
        assert word_cluster.page_accesses == before

    def test_shifted_ranges_fail_verify(self, word_cluster, edit, tmp_path):
        directory = str(tmp_path / "clu")
        word_cluster.save(directory)
        path = os.path.join(directory, CLUSTER_FILE)
        with open(path) as fh:
            payload = json.load(fh)
        # Shift every boundary up: still contiguous (loads fine) but no
        # longer covering, and objects now sit outside their shard's range.
        shift = 1 << 10
        for i, row in enumerate(payload["shards"]):
            row["key_lo"] += shift
            if i + 1 < len(payload["shards"]):
                row["key_hi"] += shift
        with open(path, "w") as fh:
            json.dump(payload, fh)
        loaded = ShardedIndex.load(directory, edit)
        report = loaded.verify()
        assert not report.ok
        assert any("not covered" in e or "outside" in e for e in report.errors)


# --------------------------------------------------------------------------
# Router MBB cache staleness (regression): a rebalance swaps trees, so any
# box cached before it must be unconditionally dropped, never filtered.


class TestRouterCacheInvalidation:
    def test_rebalance_drops_every_cached_mbb(
        self, small_words, edit, tmp_path
    ):
        directory = str(tmp_path / "mbbcache")
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        cluster = ShardedIndex.load(directory, edit)
        router = cluster.router
        for shard in cluster.shards:
            router.mbb(shard)  # prime the cache
        assert len(router._mbb_cache) == cluster.num_shards
        fattest = max(cluster.shards, key=lambda s: s.tree.object_count)
        dropped = fattest.shard_id
        cluster.rebalance(split=dropped)
        assert router._mbb_cache == {}
        live = {s.shard_id for s in cluster.shards}
        assert dropped not in live
        # Re-priming only ever consults live shards.
        for shard in cluster.shards:
            router.mbb(shard)
        assert set(router._mbb_cache) == live

    def test_post_rebalance_query_ignores_poisoned_cache(
        self, small_words, edit, tmp_path, word_tree
    ):
        """A wrong cached box would let Lemma 1 prune a live shard; after
        a rebalance no pre-rebalance cache entry may survive to do so."""
        directory = str(tmp_path / "poison")
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        cluster.save(directory)
        cluster = ShardedIndex.load(directory, edit)
        router = cluster.router
        # Poison every entry with an impossible one-cell box: were any
        # entry consulted after the rebalance, Lemma 1 would mis-prune.
        top = cluster.space.cells - 1
        poison = ((top,) * cluster.space.num_pivots,) * 2
        for shard in cluster.shards:
            router._mbb_cache[shard.shard_id] = poison
        fattest = max(cluster.shards, key=lambda s: s.tree.object_count)
        cluster.rebalance(split=fattest.shard_id)
        for q in small_words[::53]:
            assert set(cluster.range_query(q, 2)) == set(
                word_tree.range_query(q, 2)
            )
            assert [d for d, _ in cluster.knn_query(q, 5)] == [
                d for d, _ in word_tree.knn_query(q, 5)
            ]

    def test_invalidate_drops_one_entry(self, small_words, edit):
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        router = cluster.router
        for shard in cluster.shards:
            router.mbb(shard)
        victim = cluster.shards[0].shard_id
        router.invalidate(victim)
        assert victim not in router._mbb_cache
        assert len(router._mbb_cache) == cluster.num_shards - 1

"""Unit tests for the fault-injection harness (repro.storage.faults)."""

import pytest

from repro.storage import (
    BufferPool,
    FaultInjector,
    PageCorruptionError,
    PageFile,
    SimulatedCrash,
    TransientIOError,
    retry_io,
)


def _filled_pagefile(pages=4, page_size=64, checksums=True):
    pf = PageFile(page_size=page_size, checksums=checksums)
    for i in range(pages):
        pid = pf.allocate()
        pf.write_page(pid, bytes([i + 1]) * page_size)
    return pf


class TestChecksummedPageFile:
    def test_round_trip(self):
        pf = _filled_pagefile()
        assert pf.read_page(2) == b"\x03" * 64

    def test_torn_write_detected(self):
        # Acceptance (a): a torn write raises PageCorruptionError on read.
        pf = _filled_pagefile()
        inj = FaultInjector(pf, seed=1)
        inj.tear_page(2, keep=10)
        with pytest.raises(PageCorruptionError) as exc_info:
            pf.read_page(2)
        assert exc_info.value.page_id == 2
        pf.read_page(1)  # neighbours unaffected

    def test_bit_flip_detected(self):
        pf = _filled_pagefile()
        FaultInjector(pf, seed=1).flip_bit(0, bit=13)
        with pytest.raises(PageCorruptionError):
            pf.read_page(0)

    def test_verify_all_lists_bad_pages(self):
        pf = _filled_pagefile()
        inj = FaultInjector(pf, seed=1)
        inj.tear_page(1, keep=0)
        inj.flip_bit(3, bit=0)
        assert pf.verify_all() == [1, 3]

    def test_without_checksums_corruption_is_silent(self):
        pf = _filled_pagefile(checksums=False)
        FaultInjector(pf, seed=1).tear_page(2, keep=10)
        data = pf.read_page(2)  # no detection possible
        assert data[:10] == b"\x03" * 10 and data[10:] == bytes(54)

    def test_disk_backed_corruption_survives_reopen(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        pf = PageFile(page_size=64, path=path, checksums=True)
        pid = pf.allocate()
        pf.write_page(pid, b"durable")
        FaultInjector(pf, seed=1).tear_page(pid, keep=3)
        pf.close()
        reopened = PageFile(page_size=64, path=path, checksums=True)
        with pytest.raises(PageCorruptionError):
            reopened.read_page(0)
        reopened.close()

    def test_buffer_pool_surfaces_and_never_caches_corruption(self):
        pf = _filled_pagefile()
        pool = BufferPool(pf, capacity=4)
        FaultInjector(pf, seed=1).tear_page(1, keep=5)
        for _ in range(2):  # repeated reads keep failing (nothing cached)
            with pytest.raises(PageCorruptionError):
                pool.read_page(1)
        assert pool.read_page(0)[:1] == b"\x01"


class TestFaultInjectorAsPageFile:
    def test_delegates_like_a_pagefile(self):
        pf = _filled_pagefile()
        inj = FaultInjector(pf, seed=0)
        assert inj.num_pages == 4
        assert inj.page_size == 64
        assert inj.read_page(0) == pf._pages[0]
        pid = inj.allocate()
        inj.write_page(pid, b"via injector")
        assert pf.read_page(pid)[:12] == b"via injector"

    def test_determinism(self):
        def run(seed):
            pf = _filled_pagefile(pages=1)
            inj = FaultInjector(pf, seed=seed, torn_write_rate=0.5)
            outcomes = []
            for i in range(20):
                inj.write_page(0, bytes([i]) * 64)
                outcomes.append(pf.verify_page(0))
            return outcomes, inj.injected["torn"]

        a = run(seed=7)
        b = run(seed=7)
        c = run(seed=8)
        assert a == b
        assert a != c
        assert a[1] > 0  # faults actually fired

    def test_transient_io_errors_and_retry(self):
        pf = _filled_pagefile(pages=1)
        inj = FaultInjector(pf, seed=3, io_error_rate=0.5)
        sleeps: list[float] = []
        value = retry_io(
            lambda: inj.read_page(0), attempts=20, sleep=sleeps.append
        )
        assert value[:1] == b"\x01"
        assert inj.injected["io_error"] > 0
        # backoff doubles but stays bounded
        assert all(s <= 0.5 for s in sleeps)
        assert sleeps == sorted(sleeps)

    def test_retry_gives_up_after_attempts(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientIOError("nope")

        with pytest.raises(TransientIOError):
            retry_io(always_fails, attempts=3, sleep=lambda _: None)
        assert len(calls) == 3

    def test_retry_does_not_swallow_corruption(self):
        pf = _filled_pagefile()
        FaultInjector(pf, seed=1).tear_page(0, keep=1)
        calls = []

        def read():
            calls.append(1)
            return pf.read_page(0)

        with pytest.raises(PageCorruptionError):
            retry_io(read, attempts=5, sleep=lambda _: None)
        assert len(calls) == 1  # not retryable

    def test_crash_after_n_writes(self):
        pf = _filled_pagefile(pages=1, checksums=False)
        inj = FaultInjector(pf, seed=0, crash_after=3)
        for _ in range(3):
            inj.write_page(0, b"ok")
        with pytest.raises(SimulatedCrash):
            inj.write_page(0, b"boom")
        # the crashed write never reached the store
        assert pf.read_page(0)[:2] == b"ok"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(torn_write_rate=1.5)
        with pytest.raises(ValueError):
            retry_io(lambda: 1, attempts=0)


class TestRetryBackoffSchedule:
    """Satellite: pin the exact retry_io backoff contract so the engine's
    retry loop (repro.service.engine) stays predictable."""

    def test_exponential_schedule_with_cap(self):
        sleeps = []
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientIOError("nope")

        with pytest.raises(TransientIOError):
            retry_io(
                always_fails,
                attempts=8,
                base_delay=0.01,
                max_delay=0.05,
                sleep=sleeps.append,
            )
        # attempts bounds the total number of calls …
        assert len(calls) == 8
        # … with one sleep between consecutive attempts, doubling from
        # base_delay and capped at max_delay.  jitter defaults to 0, so
        # the schedule is exact.
        assert sleeps == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05, 0.05]

    def test_seeded_jitter_is_deterministic_and_bounded(self):
        def run(seed):
            sleeps = []
            with pytest.raises(TransientIOError):
                retry_io(
                    lambda: (_ for _ in ()).throw(TransientIOError("x")),
                    attempts=8,
                    base_delay=0.01,
                    max_delay=0.05,
                    sleep=sleeps.append,
                    jitter=0.5,
                    seed=seed,
                )
            return sleeps

        base = [0.01, 0.02, 0.04, 0.05, 0.05, 0.05, 0.05]
        jittered = run(42)
        # Deterministic: the same seed reproduces the same schedule.
        assert jittered == run(42)
        # A different seed gives a different schedule.
        assert jittered != run(43)
        # Bounded: each pause lands in [(1 - jitter) * nominal, nominal],
        # so jitter only ever shortens a pause (thundering herds spread
        # out; total retry time never grows).
        for pause, nominal in zip(jittered, base):
            assert nominal * 0.5 <= pause <= nominal
        # And jitter actually moved at least one pause off its nominal.
        assert jittered != base

    def test_zero_jitter_keeps_exact_schedule_regardless_of_seed(self):
        sleeps = []
        with pytest.raises(TransientIOError):
            retry_io(
                lambda: (_ for _ in ()).throw(TransientIOError("x")),
                attempts=4,
                base_delay=0.01,
                max_delay=0.05,
                sleep=sleeps.append,
                jitter=0.0,
                seed=123,
            )
        assert sleeps == [0.01, 0.02, 0.04]

    def test_jitter_out_of_range_rejected(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="jitter"):
                retry_io(lambda: None, jitter=bad)

    def test_no_sleep_after_final_failure(self):
        sleeps = []
        with pytest.raises(TransientIOError):
            retry_io(
                lambda: (_ for _ in ()).throw(TransientIOError("x")),
                attempts=3,
                base_delay=0.5,
                sleep=sleeps.append,
            )
        assert len(sleeps) == 2  # never sleeps when it will not retry again

    def test_success_stops_retrying(self):
        sleeps = []
        state = {"left": 2}

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise TransientIOError("transient")
            return "done"

        assert retry_io(flaky, attempts=5, base_delay=0.01,
                        sleep=sleeps.append) == "done"
        assert sleeps == [0.01, 0.02]

    def test_last_exception_is_reraised(self):
        errors = [TransientIOError("first"), TransientIOError("second")]

        def fails_twice():
            raise errors.pop(0)

        with pytest.raises(TransientIOError, match="second"):
            retry_io(fails_twice, attempts=2, sleep=lambda _: None)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def crashes():
            calls.append(1)
            raise SimulatedCrash("died")

        with pytest.raises(SimulatedCrash):
            retry_io(crashes, attempts=5, sleep=lambda _: None)
        assert len(calls) == 1

"""Structural verification and salvage of damaged indexes."""

import json
import os
import struct

import pytest

from repro import (
    EditDistance,
    EuclideanDistance,
    FaultInjector,
    SPBTree,
    load_tree,
    salvage_tree,
    save_tree,
)
from repro import cli
from repro.datasets import generate_synthetic, generate_words
from repro.storage.raf import _HEADER as RAF_HEADER
from repro.storage.serializers import StringSerializer

PAGE = 512


@pytest.fixture(scope="module")
def words():
    return generate_words(300, seed=5)


def _checked_tree(words, **kwargs):
    kwargs.setdefault("num_pivots", 3)
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("page_size", PAGE)
    kwargs.setdefault("checksums", True)
    return SPBTree.build(words, EditDistance(), **kwargs)


def _record_extents(tree):
    """Byte range [start, end) of every record in the RAF, by direct scan."""
    raf = tree.raf
    pf = raf.pagefile
    data = bytearray()
    for pid in range(pf.num_pages):
        data += pf._pages[pid][: pf.page_size]
    data += bytes(raf._tail)
    data = bytes(data[: raf._end_offset])
    extents = []
    offset = 0
    while offset + RAF_HEADER.size <= len(data):
        _, length = RAF_HEADER.unpack_from(data, offset)
        end = offset + RAF_HEADER.size + length
        if length == 0 or end > len(data):
            break
        extents.append((offset, end))
        offset = end
    return extents


class TestVerify:
    def test_ok_on_bulk_built_trees(self, words):
        assert _checked_tree(words).verify().ok
        vectors = generate_synthetic(200, seed=2, dimensions=3)
        tree = SPBTree.build(
            vectors, EuclideanDistance(), num_pivots=3, seed=1, page_size=PAGE
        )
        report = tree.verify()
        assert report.ok
        assert report.raf_records == 200
        assert report.leaf_entries == 200
        assert report.raf_sfc_ordered

    def test_ok_after_updates_and_reload(self, words, tmp_path):
        tree = _checked_tree(words[:200])
        for w in words[200:260]:
            tree.insert(w)
        for w in words[:30]:
            assert tree.delete(w)
        assert tree.verify().ok
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        assert load_tree(d, EditDistance()).verify().ok

    def test_ok_on_z_curve_tree(self, words):
        tree = SPBTree.build(
            words, EditDistance(), num_pivots=3, seed=1,
            page_size=PAGE, curve="z",
        )
        assert tree.verify().ok

    def test_observation_free(self, words):
        tree = _checked_tree(words)
        tree.range_query(words[0], 1)
        pool = tree.raf.buffer_pool
        before = (
            tree.page_accesses,
            tree.distance_computations,
            pool.hits,
            pool.misses,
        )
        tree.verify()
        after = (
            tree.page_accesses,
            tree.distance_computations,
            pool.hits,
            pool.misses,
        )
        assert after == before

    def test_detects_raf_corruption(self, words):
        tree = _checked_tree(words)
        FaultInjector(tree.raf.pagefile, seed=1).tear_page(1, keep=4)
        report = tree.verify()
        assert not report.ok
        assert any("page 1" in e for e in report.errors)

    def test_detects_btree_corruption(self, words):
        tree = _checked_tree(words)
        FaultInjector(tree.btree.pagefile, seed=1).flip_bit(
            tree.btree.root_page, bit=9
        )
        assert not tree.verify().ok

    def test_detects_count_drift(self, words):
        tree = _checked_tree(words)
        tree.btree.entry_count += 1
        report = tree.verify()
        assert not report.ok
        assert any("entry_count" in e for e in report.errors)

    def test_summary_format(self, words):
        text = _checked_tree(words).verify().summary()
        assert text.startswith("verify: OK")
        assert "RAF records" in text


class TestSalvage:
    def _corrupt_raf_pages(self, directory, page_ids, checksums=True):
        with open(os.path.join(directory, "spbtree.json")) as fh:
            meta = json.load(fh)
        raf_file = os.path.join(directory, meta["files"]["raf"])
        slot = PAGE + (4 if checksums else 0)
        with open(raf_file, "r+b") as fh:
            for pid in page_ids:
                fh.seek(pid * slot + 16)
                fh.write(b"\xde\xad" * 64)

    def test_recovers_surviving_records(self, words, tmp_path):
        # Acceptance (c): everything whose bytes survive comes back, and the
        # salvaged tree answers queries exactly like a fresh rebuild.
        tree = _checked_tree(words)
        extents = _record_extents(tree)
        assert len(extents) == len(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        bad_pages = (1, 3)
        self._corrupt_raf_pages(d, bad_pages)
        bad_ranges = [(p * PAGE, (p + 1) * PAGE) for p in bad_pages]
        surviving = sum(
            1
            for start, end in extents
            if not any(end > lo and start < hi for lo, hi in bad_ranges)
        )
        salv, report = salvage_tree(d, EditDistance())
        assert report.records_recovered >= surviving
        assert report.records_recovered < len(words)  # damage did cost records
        # leaf pointers enumerate every live record, so the loss accounting
        # is exact even though sequential framing broke
        assert report.records_recovered + report.records_lost == len(words)
        assert report.used_catalog and report.used_pivots
        assert set(salv.objects()) <= set(words)
        assert len(salv) == report.records_recovered
        assert salv.verify().ok
        fresh = SPBTree.build(
            sorted(salv.objects()), EditDistance(),
            num_pivots=3, seed=1, page_size=PAGE,
        )
        for q in words[:15]:
            assert sorted(salv.range_query(q, 2)) == sorted(fresh.range_query(q, 2))

    def test_mines_btree_past_framing_break(self, words, tmp_path):
        # Corrupting page 0 destroys the first record *headers*, which breaks
        # sequential framing; the B+-tree pointers recover the rest.
        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        self._corrupt_raf_pages(d, (0,))
        salv, report = salvage_tree(d, EditDistance())
        assert report.used_btree
        assert report.records_recovered > len(words) // 2
        recovered = set(salv.objects())
        assert recovered <= set(words)

    def test_clean_index_salvages_losslessly(self, words, tmp_path):
        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        salv, report = salvage_tree(d, EditDistance())
        assert report.records_recovered == len(words)
        assert report.records_lost == 0
        assert sorted(salv.objects()) == sorted(words)
        q = words[11]
        assert sorted(salv.range_query(q, 2)) == sorted(tree.range_query(q, 2))

    def test_salvage_without_catalog(self, words, tmp_path):
        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        os.unlink(os.path.join(d, "spbtree.json"))
        salv, report = salvage_tree(
            d,
            EditDistance(),
            serializer=StringSerializer(),
            page_size=PAGE,
            checksums=True,
        )
        assert not report.used_catalog
        assert report.records_recovered == len(words)
        assert sorted(salv.objects()) == sorted(words)
        assert "pivot table re-selected" in " ".join(report.notes)

    def test_metric_mismatch_rejected(self, words, tmp_path):
        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        with pytest.raises(ValueError, match="metric"):
            salvage_tree(d, EuclideanDistance())

    def test_nothing_recoverable_raises(self, tmp_path):
        d = str(tmp_path / "empty")
        os.makedirs(d)
        with pytest.raises(ValueError, match="nothing to rebuild"):
            salvage_tree(d, EditDistance(), serializer=StringSerializer())

    def test_salvaged_tree_persists(self, words, tmp_path):
        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        self._corrupt_raf_pages(d, (2,))
        salv, _ = salvage_tree(d, EditDistance())
        out = str(tmp_path / "rescued")
        save_tree(salv, out)
        reopened = load_tree(out, EditDistance())
        assert len(reopened) == len(salv)
        assert reopened.verify().ok


class TestCLI:
    def test_build_verify_salvage_end_to_end(self, tmp_path, capsys):
        d = str(tmp_path / "idx")
        cli.main(["build", "--dataset", "words", "--size", "150", "--out", d])
        cli.main(["verify", "--dir", d])
        out = capsys.readouterr().out
        assert "verify: OK" in out

        # damage the RAF payload; the digest check makes verify refuse to load
        with open(os.path.join(d, "spbtree.json")) as fh:
            raf_file = os.path.join(d, json.load(fh)["files"]["raf"])
        with open(raf_file, "r+b") as fh:
            fh.seek(40)
            fh.write(b"\xff" * 200)
        with pytest.raises(SystemExit) as exc_info:
            cli.main(["verify", "--dir", d])
        assert exc_info.value.code == 1
        out = capsys.readouterr().out
        assert "salvage" in out  # points the user at the rescue path

        rescued = str(tmp_path / "rescued")
        cli.main(["salvage", "--dir", d, "--out", rescued])
        out = capsys.readouterr().out
        assert "records recovered" in out
        tree = load_tree(rescued, EditDistance())
        assert len(tree) > 0
        assert tree.verify().ok

    def test_verify_fast_skips_object_checks(self, tmp_path, capsys):
        d = str(tmp_path / "idx")
        cli.main(["build", "--dataset", "words", "--size", "80", "--out", d])
        cli.main(["verify", "--dir", d, "--fast"])
        assert "verify: OK" in capsys.readouterr().out

    def test_metric_override_and_unknown_metric(self, tmp_path, capsys):
        d = str(tmp_path / "idx")
        cli.main(["build", "--dataset", "words", "--size", "80", "--out", d])
        cli.main(["verify", "--dir", d, "--metric", "edit"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            cli.main(["verify", "--dir", d, "--metric", "wavelet"])


class TestSalvageWal:
    """Salvage replays a surviving write-ahead log over the recovered base."""

    def _walled_dir(self, words, tmp_path):
        from repro.core.persist import open_tree

        tree = _checked_tree(words)
        d = str(tmp_path / "idx")
        save_tree(tree, d)
        live = open_tree(d, EditDistance())
        live.insert("zzyzx")
        live.insert("syzygy")
        assert live.delete(words[4])
        expected = sorted(obj for _, _, obj in live.raf.scan())
        return d, live, expected

    def test_wal_mutations_survive_salvage(self, words, tmp_path):
        d, live, expected = self._walled_dir(words, tmp_path)
        live.wal.close()
        salv, report = salvage_tree(d, EditDistance())
        assert report.used_wal
        assert sorted(salv.objects()) == expected
        assert report.records_recovered == len(expected)
        assert salv.verify().ok

    def test_wal_plus_page_damage(self, words, tmp_path):
        """Corrupt base pages AND keep the log: salvage merges what survives
        of the base with the logged mutations."""
        d, live, _ = self._walled_dir(words, tmp_path)
        live.wal.close()
        with open(os.path.join(d, "spbtree.json")) as fh:
            meta = json.load(fh)
        raf_file = os.path.join(d, meta["files"]["raf"])
        with open(raf_file, "r+b") as fh:
            fh.seek(2 * (PAGE + 4) + 16)
            fh.write(b"\xde\xad" * 64)
        salv, report = salvage_tree(d, EditDistance())
        assert report.used_wal
        recovered = set(salv.objects())
        assert {"zzyzx", "syzygy"} <= recovered  # logged inserts survive
        assert words[4] not in recovered  # logged delete still applies
        assert report.records_lost > 0  # the damage did cost base records

    def test_stale_wal_not_double_applied(self, words, tmp_path):
        d, live, expected = self._walled_dir(words, tmp_path)
        # The checkpoint-crash window: new generation committed, old log left.
        save_tree(live, d)
        live.wal.close()
        salv, report = salvage_tree(d, EditDistance())
        assert not report.used_wal
        assert any("ignored" in note for note in report.notes)
        assert sorted(salv.objects()) == expected

"""Tests for ``repro.tuning`` — the cost-model-driven self-tuning loop.

Covers the three layers separately and together:

* :class:`TraversalAdvisor` — deterministic coverage, convergence to the
  cheapest arm, the exploration floor, and seed-replay determinism;
* :class:`Tuner` — journal contract (versioned JSONL, torn-tail-tolerant),
  buffer/queue adaptation within bounds, skew-triggered rebalance with
  request-id correlation, pivot-drift scheduling and rebuild;
* the :class:`~repro.service.QueryEngine` hook — advised queries return
  the same answers, and the *untuned* path stays bit-identical (per-query
  compdists/page-accesses) to calling the index directly.
"""

from __future__ import annotations

import json
import threading
import time
import types

import pytest

from repro.cluster import ShardedIndex
from repro.core.pivots import select_pivots
from repro.core.spbtree import SPBTree
from repro.service import QueryEngine
from repro.service.context import Overloaded, QueryContext
from repro.supervisor.events import EventJournal, read_journal
from repro.tuning import TUNING_JOURNAL, OnlineCalibrator, TraversalAdvisor, Tuner


# --------------------------------------------------------------------------
# Fakes for unit-level advisor / tuner tests (no I/O, fully deterministic).


class _FakeCluster:
    """Just enough surface to count as a cluster for arm selection."""

    router = None


class _FakeTree:
    """A bare tree: no ``router`` attribute, so only the traversal axis."""


_COSTS = {
    ("incremental", "best-first"): 120,
    ("greedy", "best-first"): 40,
    ("incremental", "broadcast"): 200,
    ("greedy", "broadcast"): 90,
}


def _drive(advisor, n, k=4):
    """Advise/observe ``n`` queries against the fixed cost table."""
    choices = []
    for _ in range(n):
        choice = advisor.advise(_FakeCluster(), "q", k)
        advisor.observe(
            choice, _COSTS[(choice.traversal, choice.strategy)], 0, 0.001
        )
        choices.append((choice.traversal, choice.strategy, choice.explored))
    return choices


class _FakePool:
    """Mirror of BufferPool's tuning-relevant surface."""

    def __init__(self, capacity, occupancy=0):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._cache = {i: b"" for i in range(occupancy)}

    def resize(self, capacity):
        self.capacity = capacity
        while len(self._cache) > capacity:
            self._cache.pop(next(iter(self._cache)))


def _fake_index(pools):
    """An index whose shards wrap the given pools (ids 0, 1, ...)."""
    shards = []
    for i, pool in enumerate(pools):
        raf = types.SimpleNamespace(buffer_pool=pool)
        tree = types.SimpleNamespace(raf=raf, object_count=0)
        shards.append(types.SimpleNamespace(shard_id=i, tree=tree))
    return types.SimpleNamespace(shards=shards)


# --------------------------------------------------------------------------
# Real-cluster fixtures.


@pytest.fixture(scope="module")
def tuned_cluster(small_words, edit):
    return ShardedIndex.build(
        small_words[:300], edit, shards=3, num_pivots=3, seed=1
    )


@pytest.fixture(scope="module")
def reference_tree(small_words, edit):
    return SPBTree.build(small_words[:200], edit, num_pivots=3, seed=5)


class TestAdvisorBandit:
    def test_covers_every_arm_before_exploiting(self):
        advisor = TraversalAdvisor(epsilon=0.0, seed=1)
        choices = _drive(advisor, 4)
        assert {(t, s) for t, s, _ in choices} == set(_COSTS)
        assert all(explored for _, _, explored in choices)

    def test_converges_to_cheapest_arm(self):
        advisor = TraversalAdvisor(epsilon=0.0, seed=1)
        choices = _drive(advisor, 30)
        # After coverage, epsilon=0 always exploits the cheapest arm.
        for traversal, strategy, explored in choices[4:]:
            assert (traversal, strategy) == ("greedy", "best-first")
            assert not explored
        assert advisor.policy()["k<=8"] == {
            "traversal": "greedy",
            "strategy": "best-first",
        }

    def test_exploration_floor(self):
        advisor = TraversalAdvisor(epsilon=1.0, seed=1)
        choices = _drive(advisor, 20)
        assert all(explored for _, _, explored in choices)
        assert advisor.explorations == advisor.decisions == 20

    def test_seed_replay_is_deterministic(self):
        a = TraversalAdvisor(epsilon=0.3, seed=42)
        b = TraversalAdvisor(epsilon=0.3, seed=42)
        assert _drive(a, 50) == _drive(b, 50)

    def test_single_tree_gets_no_strategy_axis(self):
        advisor = TraversalAdvisor(epsilon=0.0, seed=1)
        seen = set()
        for _ in range(4):
            choice = advisor.advise(_FakeTree(), "q", 4)
            advisor.observe(choice, 10, 0, 0.001)
            assert choice.strategy is None
            seen.add(choice.traversal)
        assert seen == {"incremental", "greedy"}

    def test_buckets_learn_independently(self):
        advisor = TraversalAdvisor(epsilon=0.0, seed=1)
        _drive(advisor, 10, k=2)
        assert "k<=2" in advisor.policy()
        assert "k>32" not in advisor.policy()
        _drive(advisor, 10, k=64)
        assert "k>32" in advisor.policy()

    def test_feedback_defers_prediction_off_the_query_path(self):
        recorded = []

        class _Calibrator:
            def observe_query(self, query, k, compdists, page_accesses,
                              elapsed):
                recorded.append((query, k, compdists, page_accesses))

            def predict_knn(self, query, k):  # pragma: no cover
                raise AssertionError(
                    "the advisor must never predict on the query path"
                )

        advisor = TraversalAdvisor(calibrator=_Calibrator(), epsilon=0.0,
                                   seed=1)
        for i in range(6):
            choice = advisor.advise(_FakeCluster(), f"q{i}", 4)
            advisor.observe(choice, 10 + i, 3, 0.001)
        assert recorded == [(f"q{i}", 4, 10 + i, 3) for i in range(6)]

    def test_status_surfaces_arm_stats(self):
        advisor = TraversalAdvisor(epsilon=0.0, seed=1)
        _drive(advisor, 8)
        status = advisor.status()
        assert status["decisions"] == 8
        arms = status["arms"]["k<=8"]
        assert arms["greedy/best-first"]["n"] >= 1
        assert arms["greedy/best-first"]["cost"] == pytest.approx(40, abs=1)


class TestBufferAdaptation:
    def test_miss_heavy_full_pool_doubles(self):
        pool = _FakePool(capacity=4, occupancy=4)
        tuner = Tuner(
            _fake_index([pool]), buffer_bounds=(4, 32), pivot_check_every=0
        )
        tuner.tick()  # baseline deltas
        pool.misses += 20
        actions = tuner.tick()
        assert pool.capacity == 8
        assert actions["buffers"][0]["to"] == 8
        assert tuner.buffer_resizes == 1
        events = [e for e in tuner.events() if e["event"] == "buffer-resize"]
        assert events and events[-1]["detail"]["from"] == 4
        tuner.close()

    def test_half_empty_pool_halves_but_not_below_floor(self):
        pool = _FakePool(capacity=16, occupancy=2)
        tuner = Tuner(
            _fake_index([pool]), buffer_bounds=(8, 32), pivot_check_every=0
        )
        tuner.tick()
        pool.hits += 20
        tuner.tick()
        assert pool.capacity == 8
        pool.hits += 20
        tuner.tick()
        assert pool.capacity == 8  # clamped at the operator floor
        tuner.close()

    def test_grow_respects_ceiling(self):
        pool = _FakePool(capacity=32, occupancy=32)
        tuner = Tuner(
            _fake_index([pool]), buffer_bounds=(4, 32), pivot_check_every=0
        )
        tuner.tick()
        pool.misses += 50
        tuner.tick()
        assert pool.capacity == 32
        assert tuner.buffer_resizes == 0
        tuner.close()

    def test_too_few_samples_is_a_no_op(self):
        pool = _FakePool(capacity=4, occupancy=4)
        tuner = Tuner(
            _fake_index([pool]),
            buffer_bounds=(4, 32),
            min_buffer_samples=16,
            pivot_check_every=0,
        )
        tuner.tick()
        pool.misses += 5  # below the sample floor
        tuner.tick()
        assert pool.capacity == 4
        tuner.close()


class TestQueueAdaptation:
    def test_rejections_grow_queue_then_idle_shrinks_it(self):
        engine = QueryEngine(object(), workers=1, max_queue=1).start()
        try:
            tuner = Tuner(
                types.SimpleNamespace(),
                engine=engine,
                queue_bounds=(1, 8),
                pivot_check_every=0,
            )
            gate = threading.Event()
            held = [engine.submit_task(lambda ctx: gate.wait(30), QueryContext())]
            deadline = time.monotonic() + 5
            # Wait for the worker to take the blocker off the queue.
            while engine.queue_depth > 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            held.append(
                engine.submit_task(lambda ctx: gate.wait(30), QueryContext())
            )
            with pytest.raises(Overloaded):
                engine.submit_task(lambda ctx: None, QueryContext())
            tuner.tick()
            assert engine._queue.maxsize == 2
            assert tuner.queue_resizes == 1
            events = [
                e for e in tuner.events() if e["event"] == "queue-resize"
            ]
            assert events[-1]["detail"] == {
                "from": 1,
                "to": 2,
                "rejected_delta": 1,
            }
            gate.set()
            for pending in held:
                pending.result(timeout=10)
            # Sustained idle ticks walk the bound back to the floor.
            for _ in range(8):
                tuner.tick()
            assert engine._queue.maxsize == 1
            tuner.close()
        finally:
            engine.stop()


class TestJournalContract:
    def test_advised_queries_journal_versioned_events(
        self, tuned_cluster, small_words, tmp_path
    ):
        path = str(tmp_path / TUNING_JOURNAL)
        tuner = Tuner(tuned_cluster, journal_path=path, pivot_check_every=0)
        for q in small_words[:6]:
            ctx = QueryContext()
            tuner.advisor.run_knn(tuned_cluster, q, 4, ctx)
        # Decisions buffer off the query path; the tick writes them out.
        tuner.tick()
        events = [e for e in tuner.events(50) if e["event"] == "traversal"]
        assert len(events) == 6
        for event in events:
            assert event["v"] == 1
            assert isinstance(event["ts"], float)
            detail = event["detail"]
            assert detail["traversal"] in ("incremental", "greedy")
            assert detail["strategy"] in ("best-first", "broadcast")
            assert detail["compdists"] > 0
        tuner.close()
        # On-disk form: one JSON object per line, torn tail tolerated.
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) >= 6
        with open(path, "a") as fh:
            fh.write('{"v": 1, "event": "torn')  # no newline, no close
        recovered = read_journal(path)
        assert len(recovered) == len(lines)
        assert all(e["v"] == 1 for e in recovered)


class TestSkewRebalance:
    def test_hot_shard_split_with_request_id(self, small_words, edit):
        cluster = ShardedIndex.build(
            small_words, edit, shards=3, num_pivots=3, seed=1
        )
        tuner = Tuner(
            cluster,
            rebalance_payoff=1.4,
            rebalance_cooldown=0.0,
            min_rebalance_queries=0,
            pivot_check_every=0,
        )
        hot = max(cluster.shards, key=lambda s: s.tree.object_count)
        for suffix in ("x", "y", "z", "xx"):
            for w in small_words:
                key = cluster.curve.encode(cluster.space.grid(w + suffix))
                if hot.key_lo <= key < hot.key_hi:
                    cluster.insert(w + suffix)
            average = cluster.object_count / cluster.num_shards
            if hot.tree.object_count >= 1.5 * average:
                break
        assert hot.tree.object_count >= 1.4 * (
            cluster.object_count / cluster.num_shards
        ), "could not manufacture skew; adjust the workload"
        before = cluster.num_shards
        actions = tuner.tick()
        assert actions["rebalance"] is not None
        assert actions["rebalance"]["action"] == "split"
        assert cluster.num_shards == before + 1
        assert cluster.verify().ok
        assert tuner.rebalances == 1
        events = {e["event"]: e for e in tuner.events(20)}
        assert "rebalance" in events and "rebalanced" in events
        rid = events["rebalance"]["request_id"]
        assert rid and events["rebalanced"]["request_id"] == rid
        detail = events["rebalance"]["detail"]
        assert detail["skew"] >= 1.4
        assert 0 < detail["est_edc_saving_frac"] < 1
        # Cooldown: an immediate second tick must not rebalance again.
        tuner.rebalance_cooldown = 60.0
        assert tuner.tick()["rebalance"] is None
        tuner.close()


class TestPivotMaintenance:
    def test_drift_schedules_rebuild_and_tells_supervisor(
        self, small_words, edit
    ):
        cluster = ShardedIndex.build(
            small_words[:150], edit, shards=2, num_pivots=3, seed=1
        )
        supervisor = types.SimpleNamespace(journal=EventJournal())
        cluster.supervisor = supervisor
        tuner = Tuner(
            cluster, pivot_check_every=1, pivot_drift_threshold=0.15
        )
        precisions = iter([0.9, 0.5])
        tuner._measure_precision = lambda: next(precisions)
        first = tuner.tick()["pivots"]
        assert first == {"baseline": 0.9}
        second = tuner.tick()["pivots"]
        assert second["drift"] == pytest.approx(0.4444, abs=1e-3)
        assert tuner.pivot_rebuild_due
        drift_events = [
            e for e in tuner.events(20) if e["event"] == "pivot-drift"
        ]
        assert len(drift_events) == 1
        scheduled = [
            e
            for e in supervisor.journal.tail(10)
            if e["event"] == "maintenance-scheduled"
        ]
        assert len(scheduled) == 1
        assert scheduled[0]["request_id"] == drift_events[0]["request_id"]
        assert scheduled[0]["detail"]["kind"] == "pivot-rebuild"
        tuner.close()

    def test_rebuild_pivots_resolves_and_keeps_answers_exact(
        self, small_words, edit, reference_tree
    ):
        words = small_words[:200]
        # Deliberately poor pivots: the first three words, unselected.
        cluster = ShardedIndex.build(
            words, edit, shards=2, pivots=words[:3], seed=1
        )
        tuner = Tuner(cluster, pivot_check_every=0)
        tuner.pivot_rebuild_due = True
        tuner.rebuild_pivots()
        assert not tuner.pivot_rebuild_due
        outcomes = {e["event"] for e in tuner.events(20)}
        assert outcomes & {"pivot-rebuilt", "pivot-rebuild-skipped"}
        # Whatever it decided, answers stay metric-exact.
        assert cluster.verify().ok
        for q in words[50:53]:
            assert set(cluster.range_query(q, 2.0)) == set(
                reference_tree.range_query(q, 2.0)
            )
            expect_knn = [d for d, _ in reference_tree.knn_query(q, 5)]
            got_knn = [d for d, _ in cluster.knn_query(q, 5)]
            assert got_knn == expect_knn
        tuner.close()

    def test_rebuild_with_pivots_swaps_pivot_table(
        self, small_words, edit, reference_tree
    ):
        words = small_words[:200]
        cluster = ShardedIndex.build(
            words, edit, shards=2, pivots=words[:3], seed=1
        )
        new_pivots = select_pivots(words, 3, edit, method="hfi", seed=3)
        result = cluster.rebuild_with_pivots(new_pivots)
        assert result["action"] == "re-pivot"
        assert result["objects"] == len(words)
        assert list(cluster.space.pivots) == list(new_pivots)
        assert cluster.verify().ok
        assert cluster.object_count == len(words)
        for q in words[10:13]:
            expect = [d for d, _ in reference_tree.knn_query(q, 4)]
            assert [d for d, _ in cluster.knn_query(q, 4)] == expect


class TestEngineHook:
    def test_advised_engine_returns_same_answers(
        self, tuned_cluster, small_words
    ):
        queries = small_words[:8]
        expected = [list(tuned_cluster.knn_query(q, 4)) for q in queries]
        with QueryEngine(tuned_cluster, workers=1) as engine:
            tuner = Tuner(tuned_cluster, engine=engine, pivot_check_every=0)
            assert engine.advisor is tuner.advisor
            got = [list(engine.knn(q, 4)) for q in queries]
            assert got == expected
            assert tuner.advisor.decisions == len(queries)
            tuner.close()
            # close() detaches the hook and the index back-pointer.
            assert engine.advisor is None
            assert tuned_cluster.tuner is None

    def test_pinned_traversal_bypasses_the_advisor(
        self, tuned_cluster, small_words
    ):
        with QueryEngine(tuned_cluster, workers=1) as engine:
            tuner = Tuner(tuned_cluster, engine=engine, pivot_check_every=0)
            engine.submit(
                "knn", small_words[0], 4, **{}
            ).result()  # plain: advised
            advised = tuner.advisor.decisions
            engine.submit("knn", small_words[1], 4).result()
            assert tuner.advisor.decisions == advised + 1
            # An operator-pinned traversal is never overridden.
            pinned = engine.submit("knn", small_words[2], 4, "greedy")
            pinned.result()
            assert tuner.advisor.decisions == advised + 1
            tuner.close()

    def test_untuned_engine_counters_bit_identical(
        self, tuned_cluster, small_words
    ):
        queries = small_words[:10]
        direct = []
        for q in queries:
            ctx = QueryContext()
            tuned_cluster.knn_query(q, 4, context=ctx)
            direct.append((ctx.compdists, ctx.page_accesses))
        engine_counts = []
        with QueryEngine(tuned_cluster, workers=1) as engine:
            assert engine.advisor is None
            for q in queries:
                pending = engine.submit("knn", q, 4)
                pending.result()
                engine_counts.append(
                    (
                        pending.context.compdists,
                        pending.context.page_accesses,
                    )
                )
        assert engine_counts == direct

    def test_calibration_converges_from_advised_traffic(
        self, tuned_cluster, small_words
    ):
        tuner = Tuner(tuned_cluster, pivot_check_every=0)
        for q in small_words[:30]:
            ctx = QueryContext()
            tuner.advisor.run_knn(tuned_cluster, q, 8, ctx)
        actions = tuner.tick()
        fit = actions["calibrated"]
        assert fit is not None
        assert fit["edc_scale"] > 0
        assert fit["error_edc"] >= 0
        status = tuner.status()
        assert status["calibration"]["calibrations"] == 1
        assert status["policy"]  # every arm visited at least once
        assert status["ticks"] == 1
        assert status["buffer_bounds"] == [8, 256]
        tuner.close()


class TestLifecycle:
    def test_background_loop_ticks_and_stops(self, tuned_cluster):
        tuner = Tuner(
            tuned_cluster, tick_interval=0.02, pivot_check_every=0
        )
        tuner.start()
        deadline = time.monotonic() + 5
        while tuner.ticks < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert tuner.ticks >= 3
        assert tuner.status()["running"]
        tuner.stop()
        assert not tuner.status()["running"]
        ticked = tuner.ticks
        time.sleep(0.06)
        assert tuner.ticks == ticked
        tuner.close()

    def test_tick_errors_are_journalled_not_fatal(self, tuned_cluster):
        tuner = Tuner(
            tuned_cluster, tick_interval=0.01, pivot_check_every=0
        )
        boom = RuntimeError("boom")
        calls = {"n": 0}
        real_tick = tuner.tick

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise boom
            return real_tick()

        tuner.tick = flaky
        tuner.start()
        deadline = time.monotonic() + 5
        while calls["n"] < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        tuner.stop()
        assert calls["n"] >= 3  # the loop survived the failing tick
        errors = [
            e for e in tuner.events(50) if e["event"] == "tick-error"
        ]
        assert errors and "boom" in errors[0]["detail"]
        tuner.close()

    def test_calibrator_window_and_refresh(self, tuned_cluster, small_words):
        calibrator = OnlineCalibrator(tuned_cluster, window=4)
        predicted = calibrator.predict_knn(small_words[0], 4)
        assert predicted is not None and predicted[0] > 0
        for i in range(6):
            calibrator.observe(predicted, 10 + i, 5, 0.001)
        assert len(calibrator._observations) == 4  # sliding window
        calibrator.refresh()
        assert calibrator._models == {}
        # Models rebuild transparently after a refresh.
        assert calibrator.predict_knn(small_words[0], 4) is not None

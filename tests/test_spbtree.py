"""Unit and integration tests for the SPB-tree: correctness of range, kNN
and update operations against the brute-force oracle."""

import numpy as np
import pytest

from repro.baselines import LinearScan
from repro.core.spbtree import SPBTree
from repro.datasets import (
    generate_color,
    generate_dna,
    generate_signature,
    generate_words,
)
from repro.distance import (
    EditDistance,
    HammingDistance,
    MinkowskiDistance,
    TriGramAngularDistance,
)


@pytest.fixture(scope="module")
def vector_tree(request):
    rng = np.random.default_rng(5)
    data = [rng.normal(size=4) for _ in range(500)]
    metric = MinkowskiDistance(2)
    tree = SPBTree.build(data, metric, num_pivots=3, seed=1)
    oracle = LinearScan(data, metric)
    return tree, oracle, data, metric


class TestBuild:
    def test_build_indexes_everything(self, vector_tree):
        tree, _, data, _ = vector_tree
        assert len(tree) == len(data)
        assert tree.btree.entry_count == len(data)
        assert tree.raf.object_count == len(data)

    def test_raf_in_sfc_order(self, vector_tree):
        tree, _, _, _ = vector_tree
        keys = [
            tree.curve.encode(tree.space.grid(obj)) for obj in tree.objects()
        ]
        assert keys == sorted(keys)

    def test_construction_compdists_is_n_times_p(self):
        rng = np.random.default_rng(6)
        data = [rng.normal(size=4) for _ in range(200)]
        metric = MinkowskiDistance(2)
        tree = SPBTree.build(data, metric, num_pivots=3, seed=1)
        assert tree.distance_computations == len(data) * 3

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            SPBTree.build([], MinkowskiDistance(2))

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError, match="unknown curve"):
            SPBTree(MinkowskiDistance(2), [np.zeros(2)], 1.0, curve="peano")


class TestRangeQuery:
    @pytest.mark.parametrize("radius", [0.0, 0.3, 0.8, 1.5, 3.0, 10.0])
    def test_matches_oracle(self, vector_tree, radius):
        tree, oracle, _, metric = vector_tree
        rng = np.random.default_rng(17)
        for _ in range(5):
            q = rng.normal(size=4)
            expected = oracle.range_query(q, radius)
            got = tree.range_query(q, radius)
            assert len(got) == len(expected)
            assert {g.tobytes() for g in got} == {
                e.tobytes() for e in expected
            }

    def test_negative_radius_rejected(self, vector_tree):
        tree = vector_tree[0]
        with pytest.raises(ValueError):
            tree.range_query(np.zeros(4), -1)

    def test_zero_radius_finds_exact_object(self, vector_tree):
        tree, _, data, _ = vector_tree
        results = tree.range_query(data[42], 0.0)
        assert any(np.array_equal(r, data[42]) for r in results)


class TestKnnQuery:
    @pytest.mark.parametrize("k", [1, 2, 5, 16, 50])
    @pytest.mark.parametrize("traversal", ["incremental", "greedy"])
    def test_matches_oracle(self, vector_tree, k, traversal):
        tree, oracle, _, _ = vector_tree
        rng = np.random.default_rng(23)
        for _ in range(4):
            q = rng.normal(size=4)
            got = tree.knn_query(q, k, traversal=traversal)
            expected = oracle.knn_query(q, k)
            assert len(got) == k
            # Distance multisets must match (ties may reorder objects).
            assert [d for d, _ in got] == pytest.approx(
                [d for d, _ in expected]
            )
            assert [d for d, _ in got] == sorted(d for d, _ in got)

    def test_k_larger_than_dataset(self, vector_tree):
        tree, _, data, _ = vector_tree
        res = tree.knn_query(data[0], len(data) + 100)
        assert len(res) == len(data)

    def test_invalid_arguments(self, vector_tree):
        tree = vector_tree[0]
        with pytest.raises(ValueError):
            tree.knn_query(np.zeros(4), 0)
        with pytest.raises(ValueError):
            tree.knn_query(np.zeros(4), 3, traversal="sideways")


class TestUpdates:
    def test_insert_then_query(self):
        words = generate_words(300, seed=4)
        tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
        tree.insert("zzzzyq")
        assert "zzzzyq" in tree.range_query("zzzzyq", 0)
        res = tree.knn_query("zzzzyq", 1)
        assert res[0][1] == "zzzzyq"
        assert res[0][0] == 0.0

    def test_delete_removes_object(self):
        words = generate_words(300, seed=4)
        tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
        victim = words[123]
        assert tree.delete(victim)
        assert victim not in tree.range_query(victim, 0)
        assert len(tree) == 299

    def test_delete_missing_returns_false(self):
        words = generate_words(100, seed=4)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        assert not tree.delete("definitely-not-present-xyz")

    def test_mixed_updates_stay_consistent(self):
        words = generate_words(200, seed=8)
        extra = [w + "xq" for w in words[:50]]
        metric = EditDistance()
        tree = SPBTree.build(words, metric, num_pivots=3, seed=1)
        for w in extra:
            tree.insert(w)
        for w in words[:30]:
            assert tree.delete(w)
        remaining = words[30:] + extra
        oracle = LinearScan(remaining, metric)
        q = words[50]
        for r in (1, 3):
            assert sorted(tree.range_query(q, r)) == sorted(
                oracle.range_query(q, r)
            )

    def test_insert_costs_p_distance_computations(self):
        words = generate_words(200, seed=4)
        tree = SPBTree.build(words, EditDistance(), num_pivots=4, seed=1)
        before = tree.distance_computations
        tree.insert("freshwordxq")
        assert tree.distance_computations - before == 4


@pytest.mark.parametrize(
    "generator,metric_cls,radii",
    [
        (generate_words, EditDistance, (1, 3)),
        (generate_dna, TriGramAngularDistance, (0.1, 0.4)),
        (generate_signature, HammingDistance, (5, 15)),
        (generate_color, lambda: MinkowskiDistance(5), (0.02, 0.1)),
    ],
    ids=["words", "dna", "signature", "color"],
)
class TestAllDatasets:
    def test_range_and_knn_match_oracle(self, generator, metric_cls, radii):
        data = list(generator(250, seed=13))
        metric = metric_cls()
        tree = SPBTree.build(data, metric, num_pivots=3, seed=1)
        oracle = LinearScan(data, metric)
        queries = data[:3]
        for q in queries:
            for r in radii:
                assert len(tree.range_query(q, r)) == len(
                    oracle.range_query(q, r)
                )
            got = tree.knn_query(q, 5)
            expected = oracle.knn_query(q, 5)
            assert [d for d, _ in got] == pytest.approx(
                [d for d, _ in expected]
            )


class TestAccounting:
    def test_counters_and_reset(self, vector_tree):
        tree, _, data, _ = vector_tree
        tree.reset_counters()
        assert tree.page_accesses == 0
        assert tree.distance_computations == 0
        tree.range_query(data[0], 0.5)
        assert tree.page_accesses > 0
        assert tree.distance_computations > 0

    def test_pivot_mapping_counts_p_distances(self, vector_tree):
        tree, _, data, _ = vector_tree
        tree.reset_counters()
        tree.range_query(data[0], 0.0)
        # At least the |P| mapping computations of eq. 3.
        assert tree.distance_computations >= tree.space.num_pivots

    def test_storage_positive(self, vector_tree):
        tree = vector_tree[0]
        assert tree.size_in_bytes > 0
        assert tree.size_in_bytes == (
            tree.btree.size_in_bytes + tree.raf.size_in_bytes
        )

"""Property-based tests for the space-filling curves."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import HilbertCurve, ZCurve


@st.composite
def curve_and_coords(draw, curve_cls):
    ndims = draw(st.integers(1, 6))
    bits = draw(st.integers(1, 8))
    curve = curve_cls(ndims, bits)
    coords = tuple(
        draw(st.integers(0, curve.side - 1)) for _ in range(ndims)
    )
    return curve, coords


class TestHilbertProperties:
    @given(curve_and_coords(HilbertCurve))
    @settings(max_examples=150)
    def test_encode_decode_round_trip(self, cc):
        curve, coords = cc
        assert curve.decode(curve.encode(coords)) == coords

    @given(curve_and_coords(HilbertCurve), st.integers(0, 1 << 20))
    @settings(max_examples=100)
    def test_decode_encode_round_trip(self, cc, raw):
        curve, _ = cc
        value = raw % curve.max_value
        assert curve.encode(curve.decode(value)) == value

    @given(st.integers(1, 5), st.integers(1, 6), st.integers(0, 1 << 16))
    @settings(max_examples=100)
    def test_consecutive_values_are_neighbours(self, ndims, bits, raw):
        curve = HilbertCurve(ndims, bits)
        v = raw % (curve.max_value - 1) if curve.max_value > 1 else 0
        a = curve.decode(v)
        b = curve.decode(v + 1) if curve.max_value > 1 else a
        if curve.max_value > 1:
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1


class TestZCurveProperties:
    @given(curve_and_coords(ZCurve))
    @settings(max_examples=150)
    def test_encode_decode_round_trip(self, cc):
        curve, coords = cc
        assert curve.decode(curve.encode(coords)) == coords

    @given(st.integers(1, 5), st.integers(1, 6), st.data())
    @settings(max_examples=150)
    def test_monotonicity(self, ndims, bits, data):
        """Lemma 6's premise: componentwise ≤ implies key ≤."""
        curve = ZCurve(ndims, bits)
        a = tuple(
            data.draw(st.integers(0, curve.side - 1)) for _ in range(ndims)
        )
        b = tuple(
            data.draw(st.integers(x, curve.side - 1)) for x in a
        )  # b dominates a
        assert curve.encode(a) <= curve.encode(b)

    @given(curve_and_coords(ZCurve))
    @settings(max_examples=100)
    def test_agrees_with_reference_interleave(self, cc):
        curve, coords = cc

        def reference(cs):
            value = 0
            for bit in range(curve.bits - 1, -1, -1):
                for c in cs:
                    value = (value << 1) | ((c >> bit) & 1)
            return value

        assert curve.encode(coords) == reference(coords)

"""Property-based tests: every metric must satisfy the metric axioms.

The SPB-tree's pruning lemmas all derive from the triangle inequality
(§2.3), so these properties are the foundation the whole system rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import (
    CountingDistance,
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    ManhattanDistance,
    MinkowskiDistance,
    TriGramAngularDistance,
)

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
vectors = st.lists(finite_floats, min_size=4, max_size=4).map(np.array)
words = st.text(alphabet="abcdef", max_size=12)
dna = st.text(alphabet="ACGT", min_size=1, max_size=20)
bits = st.lists(st.integers(0, 1), min_size=8, max_size=8)

VECTOR_METRICS = [
    EuclideanDistance(),
    ManhattanDistance(),
    MinkowskiDistance(5),
]


@pytest.mark.parametrize("metric", VECTOR_METRICS, ids=lambda m: m.name)
class TestVectorMetricAxioms:
    @given(a=vectors, b=vectors)
    @settings(max_examples=50)
    def test_symmetry_and_nonnegativity(self, metric, a, b):
        d = metric(a, b)
        assert d >= 0
        assert d == pytest.approx(metric(b, a))

    @given(a=vectors)
    @settings(max_examples=25)
    def test_identity(self, metric, a):
        assert metric(a, a) == 0.0

    @given(a=vectors, b=vectors, c=vectors)
    @settings(max_examples=50)
    def test_triangle_inequality(self, metric, a, b, c):
        assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-7


class TestEditDistanceAxioms:
    @given(a=words, b=words)
    @settings(max_examples=80)
    def test_symmetry(self, a, b):
        ed = EditDistance()
        assert ed(a, b) == ed(b, a)

    @given(a=words, b=words)
    @settings(max_examples=80)
    def test_identity_of_indiscernibles(self, a, b):
        ed = EditDistance()
        assert (ed(a, b) == 0) == (a == b)

    @given(a=words, b=words, c=words)
    @settings(max_examples=80)
    def test_triangle_inequality(self, a, b, c):
        ed = EditDistance()
        assert ed(a, c) <= ed(a, b) + ed(b, c)

    @given(a=words, b=words)
    @settings(max_examples=50)
    def test_bounded_by_longer_length(self, a, b):
        ed = EditDistance()
        assert ed(a, b) <= max(len(a), len(b))
        assert ed(a, b) >= abs(len(a) - len(b))


class TestTriGramAngularAxioms:
    @given(a=dna, b=dna, c=dna)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        tga = TriGramAngularDistance()
        assert tga(a, c) <= tga(a, b) + tga(b, c) + 1e-9

    @given(a=dna, b=dna)
    @settings(max_examples=40)
    def test_symmetry(self, a, b):
        tga = TriGramAngularDistance()
        assert tga(a, b) == pytest.approx(tga(b, a))


class TestHammingAxioms:
    @given(a=bits, b=bits, c=bits)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        h = HammingDistance()
        assert h(a, c) <= h(a, b) + h(b, c)


class TestCountingDistance:
    def test_counts_every_call(self):
        counting = CountingDistance(EuclideanDistance())
        a, b = np.zeros(3), np.ones(3)
        for i in range(5):
            counting(a, b)
        assert counting.count == 5
        counting.reset()
        assert counting.count == 0

    def test_delegates_attributes(self):
        counting = CountingDistance(EditDistance())
        assert counting.is_discrete
        assert counting.name == "edit"

    def test_max_distance_not_counted(self):
        counting = CountingDistance(EuclideanDistance())
        counting.max_distance([np.zeros(2), np.ones(2)])
        assert counting.count == 0

"""Property tests for the cost models, across the registered datasets.

The models drive online decisions now (``repro.tuning``), so their shape
matters beyond point accuracy: a non-monotone EDC would make the tuner's
payoff reasoning incoherent, and a NaN would poison an EWMA.  These
properties are checked on several registered datasets (Table 2 pairings),
not one handpicked distribution:

* EDC and EPA are monotone non-decreasing in the range radius;
* EDC, EPA, and the estimated radius are monotone non-decreasing in k
  (evaluated at the construction-measured correction anchors, where the
  lower-envelope projection guarantees the invariant);
* ``estimate_knn(k)`` is exactly ``estimate_range`` at
  ``estimate_nd_k(k)`` — the kNN model is the range model at the
  estimated k-th-NN radius, nothing more;
* every estimate is finite and non-negative.
"""

import math

import pytest

from repro.core.costmodel import CostModel
from repro.core.spbtree import SPBTree
from repro.datasets import load_dataset

#: Registered datasets exercised, at harness-friendly sizes.
_CASES = [("words", 400), ("color", 300), ("synthetic", 300)]

#: k values at the build-time correction anchors (see
#: ``SPBTree._self_validate``), where monotonicity is guaranteed.
_KS = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module", params=_CASES, ids=[c[0] for c in _CASES])
def model_and_queries(request):
    name, size = request.param
    ds = load_dataset(name, size=size, num_queries=8, seed=11)
    tree = SPBTree.build(ds.objects, ds.metric, num_pivots=3, seed=5)
    model = CostModel(tree)
    return model, ds.queries, ds.d_plus


def _radii(d_plus):
    return [d_plus * f for f in (0.02, 0.05, 0.1, 0.2, 0.4, 0.8)]


class TestRangeMonotone:
    def test_edc_monotone_in_radius(self, model_and_queries):
        model, queries, d_plus = model_and_queries
        for q in queries:
            edcs = [model.estimate_range(q, r).edc for r in _radii(d_plus)]
            assert edcs == sorted(edcs), edcs

    def test_epa_monotone_in_radius(self, model_and_queries):
        model, queries, d_plus = model_and_queries
        for q in queries:
            epas = [model.estimate_range(q, r).epa for r in _radii(d_plus)]
            assert epas == sorted(epas), epas


class TestKnnMonotone:
    def test_radius_monotone_in_k(self, model_and_queries):
        model, queries, _ = model_and_queries
        for q in queries:
            radii = [model.estimate_nd_k(q, k) for k in _KS]
            assert radii == sorted(radii), radii

    def test_edc_epa_monotone_in_k(self, model_and_queries):
        model, queries, _ = model_and_queries
        for q in queries:
            estimates = [model.estimate_knn(q, k) for k in _KS]
            edcs = [e.edc for e in estimates]
            epas = [e.epa for e in estimates]
            assert edcs == sorted(edcs), edcs
            assert epas == sorted(epas), epas


class TestConsistency:
    def test_knn_is_range_at_estimated_radius(self, model_and_queries):
        model, queries, _ = model_and_queries
        for q in queries:
            for k in (2, 8, 32):
                knn = model.estimate_knn(q, k)
                radius = model.estimate_nd_k(q, k)
                assert knn.radius == radius
                rng = model.estimate_range(q, radius)
                assert knn.edc == rng.edc
                assert knn.epa == rng.epa

    def test_estimates_finite_and_non_negative(self, model_and_queries):
        model, queries, d_plus = model_and_queries
        for q in queries:
            for r in _radii(d_plus):
                est = model.estimate_range(q, r)
                assert math.isfinite(est.edc) and est.edc >= 0
                assert math.isfinite(est.epa) and est.epa >= 0
            for k in _KS:
                est = model.estimate_knn(q, k)
                assert math.isfinite(est.edc) and est.edc >= 0
                assert math.isfinite(est.epa) and est.epa >= 0
                assert math.isfinite(est.radius) and est.radius >= 0

    def test_calibration_round_trip(self, model_and_queries):
        """Exported constants re-applied to a fresh model reproduce its
        estimates exactly (the tuning calibrator relies on this)."""
        model, queries, _ = model_and_queries
        fresh = CostModel(model.tree, calibrate=False)
        fresh.apply_calibration(model.calibration)
        assert fresh.calibration == model.calibration
        q = queries[0]
        assert fresh.estimate_knn(q, 8).edc == model.estimate_knn(q, 8).edc
        assert fresh.estimate_knn(q, 8).epa == model.estimate_knn(q, 8).epa

"""Rebalance crash matrix: kill the cluster at every persistence boundary.

A rebalance writes the replacement shards to *fresh* directories, then
commits by renaming ``cluster.json``, then removes the replaced shard
directories.  The matrix places a :class:`SimulatedCrash` at every one of
those boundaries in turn and asserts the reloaded cluster is either the
pre-rebalance catalog or the post-rebalance one — never a hybrid — holds
every object, and passes ``verify()``.  Orphan ``shard-*`` directories
left on the losing side of the commit must be swept on reload.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.cluster import ShardedIndex, load_catalog
from repro.storage.faults import FaultInjector, SimulatedCrash


@pytest.fixture(scope="module")
def base_dir(tmp_path_factory, small_words, edit) -> str:
    cluster = ShardedIndex.build(
        small_words, edit, shards=3, num_pivots=3, seed=1
    )
    directory = str(tmp_path_factory.mktemp("cluster-crash") / "base")
    cluster.save(directory)
    return directory


def _catalog_shape(directory: str) -> list[tuple[int, int, int]]:
    cat = load_catalog(directory)
    return [(s.shard_id, s.key_lo, s.key_hi) for s in cat.shards]


def _live(directory: str, metric) -> list[str]:
    cluster = ShardedIndex.load(directory, metric)
    return sorted(str(o) for o in cluster.objects())


def _plan(base_dir, edit):
    """The deterministic rebalance each matrix run repeats: split the
    fattest shard."""
    cluster = ShardedIndex.load(base_dir, edit)
    fattest = max(cluster.shards, key=lambda s: s.tree.object_count)
    return fattest.shard_id


def _probe(base_dir, tmp_path, edit, *, split=None, merge=None) -> tuple:
    """Run the rebalance fault-free on a copy; returns (boundary count,
    post-rebalance catalog shape)."""
    directory = str(tmp_path / "probe")
    shutil.copytree(base_dir, directory)
    master = FaultInjector()  # no crash_after: counts boundaries only
    cluster = ShardedIndex.load(directory, edit)
    cluster.rebalance(split=split, merge=merge, faults=master)
    return master.ops, _catalog_shape(directory)


class TestRebalanceCrashMatrix:
    @pytest.mark.parametrize("op", ["split", "merge"])
    def test_every_boundary_is_pre_or_post_never_hybrid(
        self, op, base_dir, tmp_path, small_words, edit
    ):
        if op == "split":
            kwargs = {"split": _plan(base_dir, edit)}
        else:
            cat = load_catalog(base_dir)
            kwargs = {"merge": (cat.shards[0].shard_id, cat.shards[1].shard_id)}
        pre = _catalog_shape(base_dir)
        expected_objects = _live(base_dir, edit)
        total, post = _probe(base_dir, tmp_path / op, edit, **kwargs)
        assert total >= 2, "expected at least a save and a catalog rename"
        assert post != pre
        survived = 0
        for n in range(total + 1):
            directory = str(tmp_path / f"{op}-crash-{n}")
            shutil.copytree(base_dir, directory)
            cluster = ShardedIndex.load(directory, edit)
            master = FaultInjector(crash_after=n)
            try:
                cluster.rebalance(faults=master, **kwargs)
                survived += 1
            except SimulatedCrash:
                pass
            # The process is dead; recovery sees only the disk state.
            shape = _catalog_shape(directory)
            assert shape in (pre, post), (
                f"{op} crash point {n} left a hybrid catalog: {shape}"
            )
            recovered = ShardedIndex.load(directory, edit)
            assert (
                sorted(str(o) for o in recovered.objects()) == expected_objects
            ), f"{op} crash point {n} lost or duplicated objects"
            report = recovered.verify()
            assert report.ok, f"{op} crash point {n}: {report.errors}"
        assert survived == 1  # only the fault-free tail completes

    def test_orphan_directories_are_swept_on_reload(
        self, base_dir, tmp_path, edit
    ):
        """Crash right before the catalog rename: the freshly written new
        shard directories are orphans and must disappear on the next load."""
        split = _plan(base_dir, edit)
        total, _ = _probe(base_dir, tmp_path, edit, split=split)
        for n in range(total + 1):
            directory = str(tmp_path / f"sweep-{n}")
            shutil.copytree(base_dir, directory)
            cluster = ShardedIndex.load(directory, edit)
            try:
                cluster.rebalance(split=split, faults=FaultInjector(crash_after=n))
            except SimulatedCrash:
                pass
            recovered = ShardedIndex.load(directory, edit)
            on_disk = {
                d
                for d in os.listdir(directory)
                if d.startswith("shard-")
                and os.path.isdir(os.path.join(directory, d))
            }
            referenced = {s.dirname for s in recovered.shards}
            assert on_disk == referenced, f"crash point {n}: orphans {on_disk - referenced}"


class TestSaveCrash:
    def test_interrupted_first_save_leaves_no_catalog_or_old_one(
        self, base_dir, tmp_path, small_words, edit
    ):
        """Crashing inside save() before the cluster.json rename leaves the
        previous catalog in charge (here: the base one, unchanged)."""
        directory = str(tmp_path / "resave")
        shutil.copytree(base_dir, directory)
        pre = _catalog_shape(directory)
        cluster = ShardedIndex.load(directory, edit)
        cluster.insert("zzyzx")
        master = FaultInjector(crash_after=0)
        with pytest.raises(SimulatedCrash):
            cluster.save(directory, faults=master)
        assert _catalog_shape(directory) == pre
        recovered = ShardedIndex.load(directory, edit)
        assert recovered.verify().ok

"""Tests for the Jaccard set metric and its use in the SPB-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LinearScan
from repro.core.spbtree import SPBTree
from repro.distance import JaccardDistance, shingles, tokens

sets = st.frozensets(st.integers(0, 30), max_size=12)


class TestJaccard:
    def test_basics(self):
        j = JaccardDistance()
        assert j(frozenset("ab"), frozenset("ab")) == 0.0
        assert j(frozenset("ab"), frozenset("cd")) == 1.0
        assert j(frozenset("abc"), frozenset("bcd")) == pytest.approx(0.5)
        assert j(frozenset(), frozenset()) == 0.0

    def test_accepts_iterables(self):
        j = JaccardDistance()
        assert j(["a", "b"], ("b", "a")) == 0.0

    @given(a=sets, b=sets, c=sets)
    @settings(max_examples=100)
    def test_triangle_inequality(self, a, b, c):
        j = JaccardDistance()
        assert j(a, c) <= j(a, b) + j(b, c) + 1e-12

    @given(a=sets, b=sets)
    @settings(max_examples=60)
    def test_symmetry_and_range(self, a, b):
        j = JaccardDistance()
        assert j(a, b) == j(b, a)
        assert 0.0 <= j(a, b) <= 1.0

    def test_tokens_and_shingles(self):
        assert tokens("a b a") == frozenset({"a", "b"})
        assert shingles("abcd", 3) == frozenset({"abc", "bcd"})
        assert shingles("ab", 3) == frozenset({"ab"})


class TestJaccardIndexing:
    def test_spbtree_over_shingle_sets(self):
        words = [f"record-{i:03d}-{i % 7}" for i in range(150)]
        objects = [shingles(w) for w in words]
        metric = JaccardDistance()
        tree = SPBTree.build(objects, metric, num_pivots=3, seed=1)
        oracle = LinearScan(objects, metric)
        q = objects[5]
        for r in (0.1, 0.4, 0.8):
            assert len(tree.range_query(q, r)) == len(
                oracle.range_query(q, r)
            )
        got = tree.knn_query(q, 5)
        expected = oracle.knn_query(q, 5)
        assert [d for d, _ in got] == pytest.approx([d for d, _ in expected])

"""Unit tests for string metrics."""

import math

import pytest

from repro.distance import EditDistance, TriGramAngularDistance
from repro.distance.strings import trigram_counts


class TestEditDistance:
    @pytest.fixture(scope="class")
    def ed(self):
        return EditDistance()

    def test_paper_example(self, ed):
        # §4.1: RQ("defoliate", O, 1) = {"defoliates", "defoliated"}.
        assert ed("defoliate", "defoliates") == 1.0
        assert ed("defoliate", "defoliated") == 1.0
        assert ed("defoliate", "defoliation") == 3.0
        assert ed("defoliate", "citrate") > 1.0

    def test_classic(self, ed):
        assert ed("kitten", "sitting") == 3.0
        assert ed("flaw", "lawn") == 2.0
        assert ed("", "abc") == 3.0
        assert ed("abc", "") == 3.0
        assert ed("", "") == 0.0

    def test_identity(self, ed):
        assert ed("word", "word") == 0.0

    def test_symmetry(self, ed):
        assert ed("abcdef", "azced") == ed("azced", "abcdef")

    def test_single_edits(self, ed):
        assert ed("word", "ward") == 1.0  # substitution
        assert ed("word", "words") == 1.0  # insertion
        assert ed("word", "wod") == 1.0  # deletion

    def test_common_affixes_fast_path(self, ed):
        # Shared prefix/suffix must not change results.
        assert ed("prefixAsuffix", "prefixBsuffix") == 1.0
        assert ed("xxab", "xxba") == 2.0

    def test_is_discrete(self, ed):
        assert ed.is_discrete

    def test_exhaustive_small(self, ed):
        # Compare with a reference DP on short strings.
        def reference(a, b):
            dp = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
            for i in range(len(a) + 1):
                dp[i][0] = i
            for j in range(len(b) + 1):
                dp[0][j] = j
            for i in range(1, len(a) + 1):
                for j in range(1, len(b) + 1):
                    dp[i][j] = min(
                        dp[i - 1][j] + 1,
                        dp[i][j - 1] + 1,
                        dp[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
                    )
            return dp[-1][-1]

        words = ["", "a", "ab", "ba", "abc", "cab", "abcd", "acbd", "aabb"]
        for a in words:
            for b in words:
                assert ed(a, b) == reference(a, b), (a, b)


class TestTriGramAngular:
    @pytest.fixture(scope="class")
    def tga(self):
        return TriGramAngularDistance()

    def test_identity(self, tga):
        assert tga("ACGTACGT", "ACGTACGT") == 0.0

    def test_range(self, tga):
        d = tga("AAAAAA", "CCCCCC")
        assert 0.0 < d <= math.pi / 2 + 1e-9

    def test_symmetry(self, tga):
        a, b = "ACGTACGTAC", "ACGTTCGTAC"
        assert tga(a, b) == pytest.approx(tga(b, a))

    def test_similar_strings_are_close(self, tga):
        base = "ACGT" * 10
        mutated = base[:17] + "T" + base[18:]
        different = "GTCA" * 10
        assert tga(base, mutated) < tga(base, different)

    def test_triangle_inequality_sampled(self, tga):
        import random

        rng = random.Random(3)
        strings = [
            "".join(rng.choice("ACGT") for _ in range(20)) for _ in range(15)
        ]
        for a in strings:
            for b in strings:
                for c in strings:
                    assert tga(a, c) <= tga(a, b) + tga(b, c) + 1e-9

    def test_trigram_counts_padding(self):
        counts = trigram_counts("ab")
        # "##ab##" has tri-grams ##a, #ab, ab#, b##
        assert sum(counts.values()) == 4
        assert counts["#ab"] == 1

"""Unit tests for the pivot mapping and δ-approximation."""

import numpy as np
import pytest

from repro.core.mapping import PivotSpace, linf
from repro.distance import EditDistance, EuclideanDistance


class TestPivotSpace:
    def test_phi_is_distance_vector(self, small_vectors, l2):
        pivots = small_vectors[:3]
        space = PivotSpace(pivots, l2, d_plus=10.0)
        obj = small_vectors[10]
        phi = space.phi(obj)
        assert phi == tuple(l2(obj, p) for p in pivots)

    def test_lower_bound_property(self, small_vectors, l2):
        """D(φ(a), φ(b)) <= d(a, b): the foundation of Lemma 1."""
        pivots = small_vectors[:4]
        space = PivotSpace(pivots, l2, d_plus=10.0)
        rng = np.random.default_rng(0)
        for _ in range(100):
            i, j = rng.integers(0, len(small_vectors), 2)
            a, b = small_vectors[i], small_vectors[j]
            assert linf(space.phi(a), space.phi(b)) <= l2(a, b) + 1e-9

    def test_discrete_metric_is_exact(self, small_words, edit):
        space = PivotSpace(small_words[:3], edit, d_plus=30.0)
        assert space.exact
        assert space.delta == 1.0
        obj = small_words[5]
        assert space.grid(obj) == tuple(
            int(edit(obj, p)) for p in space.pivots
        )

    def test_continuous_default_delta(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:2], l2, d_plus=8.0)
        assert not space.exact
        assert space.delta == pytest.approx(8.0 / 256)
        assert space.cells == 257

    def test_grid_clamps_to_range(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:2], l2, d_plus=1.0, delta=0.1)
        far = small_vectors[0] + 100.0
        grid = space.grid(far)
        assert all(0 <= c < space.cells for c in grid)

    def test_bits_cover_cells(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:2], l2, d_plus=5.0, delta=0.01)
        assert (1 << space.bits) >= space.cells

    def test_validation(self, small_vectors, l2):
        with pytest.raises(ValueError):
            PivotSpace([], l2, d_plus=1.0)
        with pytest.raises(ValueError):
            PivotSpace(small_vectors[:1], l2, d_plus=0.0)
        with pytest.raises(ValueError):
            PivotSpace(small_vectors[:1], l2, d_plus=1.0, delta=-1)


class TestRangeRegion:
    def test_contains_all_results(self, small_vectors, l2):
        """Lemma 1: o ∈ RQ(q, O, r) ⇒ grid(o) ∈ RR(q, r)."""
        space = PivotSpace(small_vectors[:3], l2, d_plus=10.0, delta=0.05)
        q = small_vectors[7]
        phi_q = space.phi(q)
        for radius in (0.2, 0.7, 2.0):
            lo, hi = space.range_region(phi_q, radius)
            for o in small_vectors:
                if l2(q, o) <= radius:
                    g = space.grid(o)
                    assert all(
                        l <= c <= h for c, l, h in zip(g, lo, hi)
                    ), (g, lo, hi)

    def test_discrete_region_is_tight(self, small_words, edit):
        space = PivotSpace(small_words[:2], edit, d_plus=30.0)
        q = small_words[9]
        phi_q = space.phi(q)
        lo, hi = space.range_region(phi_q, 2)
        assert lo == tuple(max(0, int(d) - 2) for d in phi_q)
        assert hi == tuple(
            min(space.cells - 1, int(d) + 2) for d in phi_q
        )


class TestLowerBounds:
    def test_mind_to_cell_is_lower_bound(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:3], l2, d_plus=10.0, delta=0.05)
        q = small_vectors[3]
        phi_q = space.phi(q)
        for o in small_vectors[:60]:
            cell = space.grid(o)
            assert space.mind_to_cell(phi_q, cell) <= l2(q, o) + 1e-9

    def test_mind_to_box_le_mind_to_cell(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:3], l2, d_plus=10.0, delta=0.05)
        q = small_vectors[3]
        phi_q = space.phi(q)
        cells = [space.grid(o) for o in small_vectors[:20]]
        lo = tuple(min(c[i] for c in cells) for i in range(3))
        hi = tuple(max(c[i] for c in cells) for i in range(3))
        box_bound = space.mind_to_box(phi_q, lo, hi)
        for cell in cells:
            assert box_bound <= space.mind_to_cell(phi_q, cell) + 1e-9

    def test_lower_bound_between_cells(self, small_vectors, l2):
        space = PivotSpace(small_vectors[:3], l2, d_plus=10.0, delta=0.05)
        for i in range(0, 40, 2):
            a, b = small_vectors[i], small_vectors[i + 1]
            lb = space.lower_bound(space.grid(a), space.grid(b))
            assert lb <= l2(a, b) + 1e-9

    def test_upper_bound_to_pivot(self, small_words, edit):
        space = PivotSpace(small_words[:2], edit, d_plus=30.0)
        obj = small_words[11]
        grid = space.grid(obj)
        for coord, pivot in zip(grid, space.pivots):
            assert edit(obj, pivot) <= space.upper_bound_to_pivot(coord)

"""Crash matrix: kill the process at *every* write boundary of a mutation.

A logged mutation crosses three stores — the WAL file, the RAF pages, and
the B+-tree pages.  Chained :class:`FaultInjector`\\ s give all of them one
master crash counter, so the matrix places a :class:`SimulatedCrash` at
every boundary in turn, reopens the directory, and asserts the recovered
tree equals a *prefix* of the mutation script — each mutation is all (its
WAL record committed, replayed on load) or nothing (it never reached the
log); never a hybrid.  ``verify()`` must pass after every recovery.

A second matrix does the same to ``checkpoint()``: wherever it dies — mid
page dump, before the catalog rename, between the rename and the WAL
truncation — a reload yields exactly the fully-mutated tree.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core.persist import load_tree, open_tree, save_tree
from repro.core.spbtree import SPBTree
from repro.core.verify import verify_tree
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.wal import WriteAheadLog


@pytest.fixture(scope="module")
def base_dir(tmp_path_factory, small_words, edit):
    """A saved generation-1 index the matrix copies for every crash point."""
    tree = SPBTree.build(small_words[:60], edit, num_pivots=3, seed=7)
    directory = str(tmp_path_factory.mktemp("crash") / "idx")
    save_tree(tree, directory)
    return directory


def _script(words):
    """The mutation sequence under test: inserts, deletes of base objects,
    and a delete of an object inserted earlier in the same log."""
    return [
        ("insert", "zzyzx"),
        ("delete", words[3]),
        ("insert", "syzygy"),
        ("delete", "zzyzx"),
        ("insert", "qwerty"),
    ]


def _live(tree) -> list[str]:
    return sorted(obj for _, _, obj in tree.raf.scan())


def _chain_stores(tree, master: FaultInjector) -> None:
    """Route every RAF and B+-tree page write through the master counter."""
    raf_inj = FaultInjector(tree.raf.pagefile, chain=master)
    tree.raf.pagefile = raf_inj
    tree.raf.buffer_pool.pagefile = raf_inj
    tree.btree.pagefile = FaultInjector(tree.btree.pagefile, chain=master)


def _open_chained(directory: str, metric, master: FaultInjector):
    tree = open_tree(directory, metric, faults=master)
    _chain_stores(tree, master)
    return tree


def _run_script(tree, script) -> None:
    for op, obj in script:
        getattr(tree, op)(obj)


@pytest.fixture(scope="module")
def expected_states(base_dir, tmp_path_factory, small_words, edit):
    """Live-object multisets after 0..m mutations (the only legal states)."""
    directory = str(tmp_path_factory.mktemp("truth") / "idx")
    shutil.copytree(base_dir, directory)
    tree = open_tree(directory, edit)
    states = [_live(tree)]
    for op, obj in _script(small_words):
        getattr(tree, op)(obj)
        states.append(_live(tree))
    tree.wal.close()
    return states


def _count_boundaries(base_dir, tmp_path, metric, script) -> int:
    directory = str(tmp_path / "count")
    shutil.copytree(base_dir, directory)
    master = FaultInjector()  # no crash_after: just counts boundaries
    tree = _open_chained(directory, metric, master)
    _run_script(tree, script)
    tree.wal.close()
    return master.ops


class TestMutationCrashMatrix:
    def test_every_boundary_recovers_to_a_prefix_state(
        self, base_dir, tmp_path, small_words, edit, expected_states
    ):
        script = _script(small_words)
        total = _count_boundaries(base_dir, tmp_path, edit, script)
        assert total >= 2 * len(script)  # at least the WAL commit boundaries
        survived_all = 0
        for n in range(total + 1):
            directory = str(tmp_path / f"crash-{n}")
            shutil.copytree(base_dir, directory)
            master = FaultInjector(crash_after=n)
            tree = None
            try:
                tree = _open_chained(directory, edit, master)
                _run_script(tree, script)
                survived_all += 1
            except SimulatedCrash:
                pass
            finally:
                if tree is not None and tree.wal is not None:
                    tree.wal._file.close()  # drop the handle, no final fsync
            # The "process" is dead; recovery sees only the disk state.
            recovered = load_tree(directory, edit)
            state = _live(recovered)
            assert state in expected_states, (
                f"crash point {n} left a hybrid state (not any mutation prefix)"
            )
            report = verify_tree(recovered)
            assert report.ok, f"crash point {n}: {report.errors}"
        # Only the fault-free tail of the matrix completes the script.
        assert survived_all == 1

    def test_crash_before_first_wal_commit_loses_nothing_applied(
        self, base_dir, tmp_path, small_words, edit, expected_states
    ):
        """Crash point 0 dies before anything reaches the log: the reload
        must be exactly the base generation."""
        directory = str(tmp_path / "crash-first")
        shutil.copytree(base_dir, directory)
        master = FaultInjector(crash_after=0)
        with pytest.raises(SimulatedCrash):
            tree = _open_chained(directory, edit, master)
            _run_script(tree, _script(small_words))
        recovered = load_tree(directory, edit)
        assert _live(recovered) == expected_states[0]


class TestCheckpointCrashMatrix:
    def _mutated_dir(self, base_dir, dst: str, metric, script):
        shutil.copytree(base_dir, dst)
        tree = open_tree(dst, metric)
        _run_script(tree, script)
        return tree

    def test_checkpoint_crash_never_loses_a_mutation(
        self, base_dir, tmp_path, small_words, edit
    ):
        script = _script(small_words)
        # Count the checkpoint's own boundaries (page dumps, catalog rename,
        # WAL truncation) on a throwaway copy.
        probe = self._mutated_dir(base_dir, str(tmp_path / "probe"), edit, script)
        expected = _live(probe)
        master = FaultInjector()
        _chain_stores(probe, master)
        probe.wal.faults = master  # count the WAL truncation boundary too
        probe.checkpoint(faults=master)
        probe.wal.close()
        total = master.ops
        assert total >= 3
        for n in range(total + 1):
            directory = str(tmp_path / f"ckpt-{n}")
            tree = self._mutated_dir(base_dir, directory, edit, script)
            master = FaultInjector(crash_after=n)
            _chain_stores(tree, master)
            tree.wal.faults = master
            try:
                tree.checkpoint(faults=master)
            except SimulatedCrash:
                pass
            finally:
                tree.wal._file.close()
            recovered = load_tree(directory, edit)
            # Old generation + live WAL, or new generation + stale WAL:
            # both must replay to exactly the fully-mutated tree.
            assert _live(recovered) == expected, f"checkpoint crash point {n}"
            assert recovered.object_count == tree.object_count
            report = verify_tree(recovered)
            assert report.ok, f"checkpoint crash point {n}: {report.errors}"

    def test_begin_logging_after_checkpoint_crash_window(
        self, base_dir, tmp_path, small_words, edit
    ):
        """After the stale-WAL crash window, reopening for writes rebinds
        the log and new mutations land on the new generation."""
        import os

        directory = str(tmp_path / "rebind")
        tree = self._mutated_dir(base_dir, directory, edit, _script(small_words))
        # Crash between the catalog rename and the WAL truncation: commit
        # the new generation but leave the old log behind.
        save_tree(tree, directory)
        tree.wal._file.close()
        reopened = open_tree(directory, edit)  # resets the stale log
        assert reopened.wal.record_count == 0
        reopened.insert("postcrash")
        expected = _live(reopened)
        reopened.wal.close()
        final = load_tree(directory, edit)
        assert _live(final) == expected
        assert os.path.exists(os.path.join(directory, "wal.log"))

"""Unit tests for the R-tree substrate."""

import random

import pytest

from repro.baselines.rtree import RTree


def random_points(n, dims=3, seed=0):
    rng = random.Random(seed)
    return [
        (tuple(rng.uniform(0, 100) for _ in range(dims)), i)
        for i in range(n)
    ]


def in_box(p, lo, hi):
    return all(l <= x <= h for x, l, h in zip(p, lo, hi))


class TestBulkLoad:
    def test_box_query_matches_scan(self):
        points = random_points(800)
        tree = RTree(3, page_size=512)
        tree.bulk_load(points)
        lo, hi = (20.0, 20.0, 20.0), (60.0, 70.0, 50.0)
        got = {e.ptr for e in tree.box_query(lo, hi)}
        expected = {ptr for p, ptr in points if in_box(p, lo, hi)}
        assert got == expected

    def test_empty(self):
        tree = RTree(2)
        tree.bulk_load([])
        assert tree.box_query((0.0, 0.0), (1.0, 1.0)) == []

    def test_rejects_double_load(self):
        tree = RTree(2)
        tree.bulk_load([((0.0, 0.0), 0)])
        with pytest.raises(RuntimeError):
            tree.bulk_load([((1.0, 1.0), 1)])

    def test_height_grows(self):
        small = RTree(2, page_size=256)
        small.bulk_load(random_points(10, dims=2))
        large = RTree(2, page_size=256)
        large.bulk_load(random_points(2000, dims=2))
        assert large.height > small.height


class TestInsert:
    def test_insert_then_query(self):
        tree = RTree(2, page_size=256)
        points = random_points(400, dims=2, seed=3)
        for p, ptr in points:
            tree.insert(p, ptr)
        lo, hi = (10.0, 10.0), (50.0, 90.0)
        got = {e.ptr for e in tree.box_query(lo, hi)}
        expected = {ptr for p, ptr in points if in_box(p, lo, hi)}
        assert got == expected

    def test_mixed_bulk_and_insert(self):
        points = random_points(300, dims=2, seed=4)
        tree = RTree(2, page_size=256)
        tree.bulk_load(points[:200])
        for p, ptr in points[200:]:
            tree.insert(p, ptr)
        lo, hi = (0.0, 0.0), (100.0, 100.0)
        assert len(tree.box_query(lo, hi)) == 300


class TestNearestIter:
    def test_yields_in_ascending_linf_order(self):
        points = random_points(300, dims=2, seed=5)
        tree = RTree(2, page_size=256)
        tree.bulk_load(points)
        q = (50.0, 50.0)
        bounds = [b for b, _ in tree.nearest_iter(q)]
        assert bounds == sorted(bounds)
        assert len(bounds) == 300

    def test_first_is_nearest(self):
        points = random_points(300, dims=2, seed=6)
        tree = RTree(2, page_size=256)
        tree.bulk_load(points)
        q = (10.0, 90.0)
        bound, entry = next(iter(tree.nearest_iter(q)))
        expected = min(
            max(abs(a - b) for a, b in zip(p, q)) for p, _ in points
        )
        assert bound == pytest.approx(expected)


class TestValidation:
    def test_bad_dims(self):
        with pytest.raises(ValueError):
            RTree(0)

    def test_page_too_small(self):
        with pytest.raises(ValueError):
            RTree(30, page_size=64)

    def test_accounting(self):
        tree = RTree(2, page_size=256)
        tree.bulk_load(random_points(500, dims=2))
        before = tree.page_accesses
        tree.box_query((0.0, 0.0), (10.0, 10.0))
        assert tree.page_accesses > before
        assert tree.size_in_bytes == tree.num_pages * 256

"""End-to-end integration scenarios across multiple subsystems."""

import numpy as np
import pytest

from repro import (
    CostModel,
    EditDistance,
    LinearScan,
    MinkowskiDistance,
    SPBTree,
    load_dataset,
    select_pivots,
    similarity_join,
)


class TestMultimediaScenario:
    """The paper's motivating use case: image (histogram) retrieval."""

    def test_full_pipeline(self):
        ds = load_dataset("color", size=600, num_queries=5)
        tree = SPBTree.build(
            ds.objects, ds.metric, num_pivots=5, d_plus=ds.d_plus, seed=7
        )
        oracle = LinearScan(ds.objects, ds.metric)
        for q in ds.queries:
            got = tree.knn_query(q, 10)
            expected = oracle.knn_query(q, 10)
            assert [d for d, _ in got] == pytest.approx(
                [d for d, _ in expected]
            )
        # The cost model should estimate this workload sensibly.
        model = CostModel(tree)
        estimate = model.estimate_knn(ds.queries[0], 10)
        assert estimate.edc >= 5
        assert estimate.epa > 0


class TestDataIntegrationScenario:
    """The paper's join use case: near-duplicate record detection."""

    def test_dirty_vs_master_join(self):
        ds = load_dataset("words", size=400)
        master = ds.objects[:200]
        # "Dirty" records: single-typo copies of some master records.
        dirty = [w + "x" for w in master[:40]] + ds.objects[200:300]
        pivots = select_pivots(master, 4, ds.metric, seed=3)
        tree_m = SPBTree.build(
            master, ds.metric, pivots=pivots, d_plus=ds.d_plus, curve="z"
        )
        tree_d = SPBTree.build(
            dirty, ds.metric, pivots=pivots, d_plus=ds.d_plus, curve="z"
        )
        result = similarity_join(tree_d, tree_m, 1)
        # Every typo copy must match its master record.
        matched = {a for a, _ in result.pairs}
        for w in master[:40]:
            assert (w + "x") in matched
        expected = sum(
            1 for a in dirty for b in master if ds.metric(a, b) <= 1
        )
        assert len(result.pairs) == expected


class TestPersistenceScenario:
    def test_pagefile_survives_reopen(self, tmp_path):
        """The page abstraction round-trips through a real file."""
        from repro.storage import PageFile

        path = str(tmp_path / "index.db")
        pf = PageFile(page_size=256, path=path)
        pages = []
        for i in range(10):
            pid = pf.allocate()
            pf.write_page(pid, f"page-{i}".encode())
            pages.append(pid)
        pf.close()
        reopened = PageFile(page_size=256, path=path)
        for i, pid in enumerate(pages):
            assert reopened.read_page(pid).rstrip(b"\x00") == f"page-{i}".encode()
        reopened.close()


class TestHeterogeneousObjects:
    def test_variable_length_strings(self):
        words = ["a", "ab" * 30, "xyz", "m" * 100, "qq"] + [
            f"word{i}" for i in range(100)
        ]
        metric = EditDistance()
        tree = SPBTree.build(words, metric, num_pivots=2, seed=1)
        oracle = LinearScan(words, metric)
        assert sorted(tree.range_query("a", 2)) == sorted(
            oracle.range_query("a", 2)
        )

    def test_single_object_dataset(self):
        tree = SPBTree.build(["solo"], EditDistance(), num_pivots=1, seed=1)
        assert tree.range_query("solo", 0) == ["solo"]
        assert tree.knn_query("anything", 1)[0][1] == "solo"

    def test_all_identical_objects(self):
        data = [np.ones(3)] * 20
        tree = SPBTree.build(data, MinkowskiDistance(2), num_pivots=1, seed=1)
        assert len(tree.range_query(np.ones(3), 0.0)) == 20


class TestPublicApi:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

"""Tests for SPB-tree persistence (save_tree / load_tree)."""

import numpy as np
import pytest

from repro import (
    EditDistance,
    EuclideanDistance,
    MinkowskiDistance,
    SPBTree,
    load_tree,
    save_tree,
    similarity_join,
)
from repro.core.costmodel import CostModel
from repro.core.pivots import select_pivots
from repro.datasets import generate_color, generate_words


class TestRoundTrip:
    def test_words_queries_survive(self, tmp_path):
        words = generate_words(400, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
        q = words[7]
        expected_range = sorted(tree.range_query(q, 2))
        expected_knn = [d for d, _ in tree.knn_query(q, 5)]
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), EditDistance())
        assert sorted(reopened.range_query(q, 2)) == expected_range
        assert [d for d, _ in reopened.knn_query(q, 5)] == expected_knn
        assert len(reopened) == len(tree)

    def test_vectors_survive(self, tmp_path):
        data = generate_color(300, seed=5)
        metric = MinkowskiDistance(5)
        tree = SPBTree.build(data, metric, num_pivots=4, seed=1)
        q = data[0]
        expected = len(tree.range_query(q, 0.1))
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), MinkowskiDistance(5))
        assert len(reopened.range_query(q, 0.1)) == expected

    def test_updates_after_reload(self, tmp_path):
        words = generate_words(200, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), EditDistance())
        reopened.insert("zzqqzz")
        assert "zzqqzz" in reopened.range_query("zzqqzz", 0)
        assert reopened.delete(words[0])
        assert words[0] not in reopened.range_query(words[0], 0)

    def test_deleted_objects_stay_deleted(self, tmp_path):
        words = generate_words(200, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        victim = words[50]
        assert tree.delete(victim)
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), EditDistance())
        assert victim not in reopened.range_query(victim, 0)
        assert len(reopened) == 199

    def test_cost_model_statistics_survive(self, tmp_path):
        words = generate_words(300, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=3, seed=1)
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), EditDistance())
        assert reopened.pair_distances == tree.pair_distances
        assert reopened.ndk_corrections == tree.ndk_corrections
        assert reopened.grid_sample == tree.grid_sample
        model = CostModel(reopened)
        estimate = model.estimate_knn(words[0], 4)
        assert estimate.edc >= 3

    def test_join_after_reload(self, tmp_path):
        metric = EditDistance()
        left = generate_words(150, seed=71)
        right = generate_words(150, seed=72)
        pivots = select_pivots(right, 3, metric, seed=3)
        d_plus = metric.max_distance(left + right)
        tq = SPBTree.build(left, metric, pivots=pivots, d_plus=d_plus, curve="z")
        to = SPBTree.build(right, metric, pivots=pivots, d_plus=d_plus, curve="z")
        expected = len(similarity_join(tq, to, 2).pairs)
        save_tree(tq, str(tmp_path / "q"))
        save_tree(to, str(tmp_path / "o"))
        rq = load_tree(str(tmp_path / "q"), EditDistance())
        ro = load_tree(str(tmp_path / "o"), EditDistance())
        assert len(similarity_join(rq, ro, 2).pairs) == expected


class TestValidation:
    def test_metric_mismatch_rejected(self, tmp_path):
        words = generate_words(100, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        save_tree(tree, str(tmp_path / "idx"))
        with pytest.raises(ValueError, match="metric"):
            load_tree(str(tmp_path / "idx"), EuclideanDistance())

    def test_empty_tree_rejected(self):
        tree = SPBTree(EditDistance(), ["pivot"], 10.0)
        with pytest.raises(ValueError, match="empty"):
            save_tree(tree, "/tmp/nonexistent-spb-dir")

    def test_counters_reset_after_load(self, tmp_path):
        words = generate_words(100, seed=3)
        tree = SPBTree.build(words, EditDistance(), num_pivots=2, seed=1)
        save_tree(tree, str(tmp_path / "idx"))
        reopened = load_tree(str(tmp_path / "idx"), EditDistance())
        assert reopened.page_accesses == 0
        assert reopened.distance_computations == 0

"""Smoke tests: every experiment module runs end-to-end at tiny scale and
produces the table structure its paper artifact requires."""

import importlib

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentTable, radius_for
from repro.datasets import load_dataset

TINY = dict(size=150, queries=3, seed=42)


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_runs_and_renders(name):
    module = importlib.import_module(f"repro.experiments.{name}")
    tables = module.run(**TINY)
    assert tables, name
    for table in tables:
        assert isinstance(table, ExperimentTable)
        assert table.rows, f"{name} produced an empty table"
        for row in table.rows:
            assert len(row) == len(table.columns)
        rendered = table.render()
        assert table.title in rendered


class TestExperimentContent:
    def test_table4_covers_both_curves(self):
        from repro.experiments import table4_sfc

        (table,) = table4_sfc.run(**TINY)
        curves = {row[1] for row in table.rows}
        assert curves == {"hilbert", "z"}

    def test_table6_covers_all_mams(self):
        from repro.experiments import table6_construction

        (table,) = table6_construction.run(size=150, seed=42)
        methods = {row[1] for row in table.rows}
        assert methods == {"M-tree", "OmniR-tree", "M-Index", "SPB-tree"}

    def test_table7_spb_compdists_equals_pivots(self):
        from repro.experiments import table7_update

        (table,) = table7_update.run(size=150, seed=42)
        spb_row = next(r for r in table.rows if r[0] == "SPB-tree")
        assert spb_row[2] == 5  # |P| distance computations per insert

    def test_fig17_sja_finds_same_pairs_as_qja(self):
        from repro.experiments import fig17_join

        tables = fig17_join.run(size=200, seed=42, datasets=["words"])
        rows = tables[0].rows
        by_eps = {}
        for method, eps, *_rest, pairs in rows:
            by_eps.setdefault(eps, {})[method] = pairs
        for eps, methods in by_eps.items():
            counts = set(methods.values())
            assert len(counts) == 1, f"pair counts disagree at ε={eps}%"


class TestCommonHelpers:
    def test_radius_for_discrete_is_integer(self):
        ds = load_dataset("words", size=100)
        r = radius_for(ds, 8)
        assert r == int(r) and r >= 1

    def test_radius_for_continuous(self):
        ds = load_dataset("color", size=100)
        assert radius_for(ds, 10) == pytest.approx(ds.d_plus * 0.1)

    def test_table_rejects_bad_row(self):
        t = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestHarnessHelpers:
    def test_table_to_csv(self, tmp_path):
        from repro.experiments.common import ExperimentTable, table_to_csv

        t = ExperimentTable("t", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", "-")
        path = tmp_path / "out.csv"
        table_to_csv(t, str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_ascii_chart_renders_all_series(self):
        from repro.experiments.common import ascii_chart

        chart = ascii_chart(
            {"up": [(1, 1), (2, 4)], "down": [(1, 4), (2, 1)]},
            title="demo",
            width=20,
            height=6,
        )
        assert "demo" in chart
        assert "o=up" in chart and "x=down" in chart

    def test_ascii_chart_log_scale_and_empty(self):
        from repro.experiments.common import ascii_chart

        assert ascii_chart({}, title="empty") == "empty"
        chart = ascii_chart(
            {"s": [(1, 10), (2, 10000)]}, log_y=True, width=20, height=6
        )
        assert "10,000" in chart or "1e+04" in chart

    def test_table_series_skips_non_numeric(self):
        from repro.experiments.common import ExperimentTable, table_series

        t = ExperimentTable("t", ["m", "k", "PA"])
        t.add_row("a", 1, 5)
        t.add_row("a", 2, "-")
        t.add_row("b", 1, 7)
        series = table_series(t, "m", "k", "PA")
        assert series == {"a": [(1.0, 5.0)], "b": [(1.0, 7.0)]}

"""Chaos writes: a concurrent writer under chaos queries, plus epoch views.

The snapshot-consistency contract under test: a writer mutating the tree
while queries run concurrently must never let a reader observe a
half-applied mutation.  Every query result must be *sound* — every returned
object genuinely within range of the query at some epoch — and the final
tree must pass ``verify()`` exactly.  A second harness pushes WAL-backed
inserts through the :class:`~repro.service.QueryEngine` while queries
retry injected transient I/O faults (mutations themselves are never
retried; they must simply succeed or fail atomically).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.persist import load_tree, open_tree, save_tree
from repro.core.spbtree import SPBTree
from repro.core.verify import verify_tree
from repro.distance import EuclideanDistance
from repro.service import EpochLock, QueryContext, QueryEngine
from repro.storage.faults import FaultInjector


@pytest.fixture()
def vec_tree(small_vectors):
    return SPBTree.build(
        small_vectors[:200], EuclideanDistance(), seed=7, cache_pages=0
    )


class TestConcurrentWriterAndQueries:
    def test_queries_stay_sound_during_mutation(self, vec_tree, small_vectors):
        tree = vec_tree
        metric = EuclideanDistance()
        to_insert = small_vectors[200:240]
        to_delete = small_vectors[:20]
        writer_errors: list[BaseException] = []

        def writer():
            try:
                for i, vec in enumerate(to_insert):
                    tree.insert(vec)
                    if i < len(to_delete):
                        assert tree.delete(to_delete[i])
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                writer_errors.append(exc)

        thread = threading.Thread(target=writer)
        results = []
        with QueryEngine(tree, workers=3, max_queue=64) as engine:
            thread.start()
            pending = []
            for i in range(36):
                q = small_vectors[(i * 13) % 200]
                kind = ("range", "knn", "count")[i % 3]
                args = (q, 6) if kind == "knn" else (q, 0.8)
                pending.append((kind, q, engine.submit(kind, *args)))
            for kind, q, p in pending:
                results.append((kind, q, p.result(timeout=120)))
            thread.join(timeout=120)
        assert not thread.is_alive() and not writer_errors

        # Soundness: every returned object is genuinely within range; every
        # kNN list is sorted by true distance.  (Completeness relative to a
        # moving dataset is epoch-dependent; soundness never is.)
        for kind, q, result in results:
            assert result.complete
            assert result.stats is not None
            if kind == "range":
                for obj in result:
                    assert metric(q, obj) <= 0.8 + 1e-9
            elif kind == "knn":
                dists = [d for d, obj in result]
                assert dists == sorted(dists)
                for d, obj in result:
                    assert metric(q, obj) == pytest.approx(d)
            else:
                assert result.count >= 0

        # The mutations all landed; the final structure audits clean.
        assert tree.object_count == 200 + len(to_insert) - len(to_delete)
        report = verify_tree(tree)
        assert report.ok, report.errors
        final = sorted(repr(o) for _, _, o in tree.raf.scan())
        want = sorted(
            repr(o)
            for o in list(small_vectors[20:200]) + list(to_insert)
        )
        assert final == want

    def test_epoch_is_pinned_on_query_contexts(self, vec_tree, small_vectors):
        tree = vec_tree
        ctx = QueryContext()
        tree.range_query(small_vectors[0], 0.5, context=ctx)
        assert ctx.epoch == tree._epoch_lock.epoch
        tree.insert(small_vectors[250])
        ctx2 = QueryContext()
        tree.knn_query(small_vectors[1], 4, context=ctx2)
        assert ctx2.epoch == ctx.epoch + 1


class TestWalBackedChaos:
    def test_engine_mutations_with_chaos_queries(
        self, small_vectors, tmp_path
    ):
        """WAL-backed inserts through the engine while queries retry
        injected transient faults; afterwards the log replays to exactly
        the served state."""
        metric = EuclideanDistance()
        directory = str(tmp_path / "idx")
        save_tree(
            SPBTree.build(small_vectors[:150], metric, seed=7, cache_pages=0),
            directory,
        )
        tree = open_tree(directory, metric, wal_fsync=False)
        injector = FaultInjector(tree.raf.pagefile, seed=37, io_error_rate=0.01)
        tree.raf.pagefile = injector
        tree.raf.buffer_pool.pagefile = injector
        inserts = list(small_vectors[200:225])
        with QueryEngine(
            tree, workers=4, max_queue=128, retry_attempts=25,
            retry_base_delay=0.001,
        ) as engine:
            pending = []
            for i in range(25):
                q = small_vectors[(i * 11) % 150]
                pending.append(engine.submit("insert", inserts[i]))
                pending.append(engine.submit("range", q, 0.7))
                pending.append(engine.submit("knn", q, 5))
            outcomes = [p.result(timeout=120) for p in pending]
        assert engine.failed == 0
        assert engine.mutated == len(inserts)
        assert all(o is not None for o in outcomes)
        assert tree.wal.insert_count == len(inserts)
        assert tree.object_count == 150 + len(inserts)
        tree.raf.pagefile = injector.inner
        tree.raf.buffer_pool.pagefile = injector.inner
        report = verify_tree(tree)
        assert report.ok, report.errors
        expected = sorted(repr(o) for _, _, o in tree.raf.scan())
        tree.wal.close()
        recovered = load_tree(directory, metric)
        assert sorted(repr(o) for _, _, o in recovered.raf.scan()) == expected


class TestEpochLock:
    def test_epoch_bumps_once_per_write(self):
        lock = EpochLock()
        assert lock.epoch == 0
        with lock.write():
            pass
        with lock.write():
            with lock.write():  # nested write: one logical mutation
                pass
        assert lock.epoch == 2

    def test_reads_are_reentrant_and_epoch_stable(self):
        lock = EpochLock()
        with lock.write():
            pass
        with lock.read() as e1:
            with lock.read() as e2:
                assert e1 == e2 == 1

    def test_read_to_write_upgrade_refused(self):
        lock = EpochLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                with lock.write():
                    pass

    def test_writer_may_read_its_own_snapshot(self):
        lock = EpochLock()
        with lock.write():
            with lock.read() as epoch:  # delete's byte-compare probe
                assert epoch == lock.epoch

    def test_readers_exclude_writers(self):
        lock = EpochLock()
        order: list[str] = []
        entered = threading.Event()
        release = threading.Event()

        def reader():
            with lock.read():
                order.append("read-start")
                entered.set()
                release.wait(timeout=30)
                order.append("read-end")

        def writer():
            entered.wait(timeout=30)
            with lock.write():
                order.append("write")

        t_read = threading.Thread(target=reader)
        t_write = threading.Thread(target=writer)
        t_read.start(), t_write.start()
        entered.wait(timeout=30)
        release.set()
        t_read.join(timeout=30), t_write.join(timeout=30)
        assert order == ["read-start", "read-end", "write"]
        assert lock.epoch == 1

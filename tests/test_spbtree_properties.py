"""Property-based, end-to-end tests of the SPB-tree query algorithms.

Hypothesis generates small random datasets and queries; results must match
brute force exactly.  These are the strongest guards on Lemmas 1-4: any
rounding error in the δ-approximation or any off-by-one in RR(q, r) shows
up here as a missing result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LinearScan
from repro.core.spbtree import SPBTree
from repro.distance import EditDistance, EuclideanDistance

coords = st.floats(
    min_value=-5, max_value=5, allow_nan=False, allow_infinity=False
)
vector_datasets = st.lists(
    st.tuples(coords, coords, coords).map(lambda t: np.array(t)),
    min_size=12,
    max_size=50,
)
word = st.text(alphabet="abcd", min_size=1, max_size=8)
word_datasets = st.lists(word, min_size=12, max_size=50, unique=True)


class TestVectorQueries:
    @given(
        data=vector_datasets,
        radius=st.floats(min_value=0, max_value=6),
        curve=st.sampled_from(["hilbert", "z"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_equals_brute_force(self, data, radius, curve):
        metric = EuclideanDistance()
        tree = SPBTree.build(data, metric, num_pivots=2, curve=curve, seed=1)
        oracle = LinearScan(data, metric)
        q = data[0]
        got = tree.range_query(q, radius)
        expected = oracle.range_query(q, radius)
        assert sorted(g.tobytes() for g in got) == sorted(
            e.tobytes() for e in expected
        )

    @given(
        data=vector_datasets,
        k=st.integers(1, 10),
        traversal=st.sampled_from(["incremental", "greedy"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_knn_equals_brute_force(self, data, k, traversal):
        metric = EuclideanDistance()
        tree = SPBTree.build(data, metric, num_pivots=2, seed=1)
        oracle = LinearScan(data, metric)
        q = data[-1]
        got = tree.knn_query(q, k, traversal=traversal)
        expected = oracle.knn_query(q, min(k, len(data)))
        assert [d for d, _ in got] == pytest.approx([d for d, _ in expected])


class TestWordQueries:
    @given(data=word_datasets, radius=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_range_equals_brute_force(self, data, radius):
        metric = EditDistance()
        tree = SPBTree.build(data, metric, num_pivots=2, seed=1)
        oracle = LinearScan(data, metric)
        q = data[0]
        assert sorted(tree.range_query(q, radius)) == sorted(
            oracle.range_query(q, radius)
        )

    @given(data=word_datasets, k=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_knn_distances_match(self, data, k):
        metric = EditDistance()
        tree = SPBTree.build(data, metric, num_pivots=2, seed=1)
        oracle = LinearScan(data, metric)
        q = data[0]
        got = tree.knn_query(q, k)
        expected = oracle.knn_query(q, min(k, len(data)))
        assert [d for d, _ in got] == [d for d, _ in expected]


class TestInsertDeleteRoundTrip:
    @given(data=word_datasets, extra=st.lists(word, max_size=10, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_insert_then_delete_restores_results(self, data, extra):
        metric = EditDistance()
        tree = SPBTree.build(data, metric, num_pivots=2, seed=1)
        q = data[0]
        baseline = sorted(tree.range_query(q, 2))
        fresh = [w for w in extra if w not in set(data)]
        for w in fresh:
            tree.insert(w)
        for w in fresh:
            assert tree.delete(w)
        assert sorted(tree.range_query(q, 2)) == baseline


class TestJoinProperty:
    @given(
        left=word_datasets,
        right=word_datasets,
        eps=st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_join_equals_brute_force(self, left, right, eps):
        from repro.core.join import similarity_join
        from repro.core.pivots import select_pivots

        metric = EditDistance()
        pivots = select_pivots(left + right, 2, metric, seed=3)
        d_plus = metric.max_distance(left + right)
        tq = SPBTree.build(
            left, metric, pivots=pivots, d_plus=d_plus, curve="z"
        )
        to = SPBTree.build(
            right, metric, pivots=pivots, d_plus=d_plus, curve="z"
        )
        result = similarity_join(tq, to, eps)
        expected = sum(
            1 for a in left for b in right if metric(a, b) <= eps
        )
        assert len(result.pairs) == expected

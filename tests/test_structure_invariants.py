"""Structural invariants of the tree baselines.

Query correctness is tested elsewhere against the brute-force oracle; these
tests verify the *internal* geometry the pruning rules depend on, which
correctness tests alone might not exercise (an over-large covering radius
is invisible to result checks — it only costs performance until it hides a
real bug).
"""

import numpy as np
import pytest

from repro.baselines.mtree import MTree
from repro.baselines.rtree import RTree
from repro.datasets import generate_words
from repro.distance import EditDistance, EuclideanDistance


class TestMTreeInvariants:
    @pytest.fixture(scope="class")
    def tree(self):
        words = generate_words(400, seed=3)
        return MTree.build(words, EditDistance(), seed=7), words

    def _subtree_objects(self, tree, page_id):
        node = tree.read_node(page_id)
        if node.is_leaf:
            return [e.obj for e in node.entries]
        out = []
        for e in node.entries:
            out.extend(self._subtree_objects(tree, e.child))
        return out

    def test_covering_radii_cover_subtrees(self, tree):
        mtree, _ = tree
        metric = mtree.distance.metric
        stack = [mtree.root_page]
        while stack:
            node = mtree.read_node(stack.pop())
            if node.is_leaf:
                continue
            for entry in node.entries:
                objects = self._subtree_objects(mtree, entry.child)
                worst = max(metric(entry.obj, o) for o in objects)
                assert worst <= entry.radius + 1e-9
                stack.append(entry.child)

    def test_every_object_stored_once(self, tree):
        mtree, words = tree
        stored = self._subtree_objects(mtree, mtree.root_page)
        assert sorted(stored) == sorted(words)

    def test_leaf_parent_distances_exact(self, tree):
        mtree, _ = tree
        metric = mtree.distance.metric
        stack = [(mtree.root_page, None)]
        while stack:
            page_id, routing = stack.pop()
            node = mtree.read_node(page_id)
            for entry in node.entries:
                if routing is not None:
                    assert entry.dist_to_parent == pytest.approx(
                        metric(routing, entry.obj)
                    )
                if not node.is_leaf:
                    stack.append((entry.child, entry.obj))

    def test_insert_preserves_radii(self):
        rng = np.random.default_rng(5)
        data = [rng.normal(size=3) for _ in range(150)]
        mtree = MTree(EuclideanDistance(), seed=7)
        for o in data:
            mtree.insert(o)
        metric = mtree.distance.metric
        invariant_tester = TestMTreeInvariants()
        stack = [mtree.root_page]
        while stack:
            node = mtree.read_node(stack.pop())
            if node.is_leaf:
                continue
            for entry in node.entries:
                objects = invariant_tester._subtree_objects(
                    mtree, entry.child
                )
                worst = max(metric(entry.obj, o) for o in objects)
                assert worst <= entry.radius + 1e-9
                stack.append(entry.child)


class TestRTreeInvariants:
    @pytest.fixture(scope="class")
    def tree(self):
        import random

        rng = random.Random(4)
        points = [
            (tuple(rng.uniform(0, 100) for _ in range(3)), i)
            for i in range(600)
        ]
        rtree = RTree(3, page_size=512)
        rtree.bulk_load(points[:400])
        for p, ptr in points[400:]:
            rtree.insert(p, ptr)
        return rtree, points

    def test_mbrs_contain_children(self, tree):
        rtree, _ = tree
        stack = [rtree.root_page]
        while stack:
            node = rtree.read_node(stack.pop())
            if node.is_leaf:
                continue
            for entry in node.entries:
                child = rtree.read_node(entry.child)
                if child.is_leaf:
                    for leaf_entry in child.entries:
                        assert all(
                            l - 1e-12 <= x <= h + 1e-12
                            for x, l, h in zip(
                                leaf_entry.point, entry.lo, entry.hi
                            )
                        )
                else:
                    for child_entry in child.entries:
                        assert all(
                            l <= cl and h >= ch
                            for l, h, cl, ch in zip(
                                entry.lo,
                                entry.hi,
                                child_entry.lo,
                                child_entry.hi,
                            )
                        )
                stack.append(entry.child)

    def test_every_point_reachable(self, tree):
        rtree, points = tree
        found = {
            e.ptr
            for e in rtree.box_query((0.0,) * 3, (100.0,) * 3)
        }
        assert found == {ptr for _, ptr in points}

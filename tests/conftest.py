"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

# Allow running the tests without installing the package.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np
import pytest

from repro.distance import EditDistance, EuclideanDistance
from repro.datasets import generate_words


@pytest.fixture(scope="session")
def small_vectors() -> list[np.ndarray]:
    """400 clustered 4-d vectors (deterministic)."""
    rng = np.random.default_rng(1234)
    centers = rng.normal(size=(5, 4))
    out = []
    for i in range(400):
        out.append(centers[i % 5] + rng.normal(scale=0.3, size=4))
    return out


@pytest.fixture(scope="session")
def small_words() -> list[str]:
    """400 pseudo-English words (deterministic)."""
    return generate_words(400, seed=99)


@pytest.fixture(scope="session")
def l2() -> EuclideanDistance:
    return EuclideanDistance()


@pytest.fixture(scope="session")
def edit() -> EditDistance:
    return EditDistance()

"""Unit tests for the disk B+-tree with MBB entries."""

import random

import pytest

from repro.btree import BPlusTree
from repro.sfc import ZCurve


def make_tree(page_size=256, bits=8):
    return BPlusTree(ZCurve(2, bits), page_size=page_size)


def keyed_items(n, bits=8, seed=0):
    rng = random.Random(seed)
    curve = ZCurve(2, bits)
    items = []
    for i in range(n):
        coords = (rng.randrange(curve.side), rng.randrange(curve.side))
        items.append((curve.encode(coords), i * 16))
    items.sort()
    return items


class TestBulkLoad:
    def test_round_trip(self):
        tree = make_tree()
        items = keyed_items(500)
        tree.bulk_load(items)
        assert tree.items() == items
        assert tree.entry_count == 500

    def test_empty(self):
        tree = make_tree()
        tree.bulk_load([])
        assert tree.items() == []
        assert tree.height == 1

    def test_requires_sorted(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(5, 0), (3, 1)])

    def test_rejects_double_load(self):
        tree = make_tree()
        tree.bulk_load([(1, 0)])
        with pytest.raises(RuntimeError):
            tree.bulk_load([(2, 0)])

    def test_duplicate_keys_allowed(self):
        tree = make_tree()
        items = [(5, i) for i in range(100)]
        tree.bulk_load(items)
        assert tree.items() == items
        assert len(tree.find_entries(5)) == 100

    def test_height_grows_with_size(self):
        small = make_tree()
        small.bulk_load(keyed_items(10))
        large = make_tree()
        large.bulk_load(keyed_items(2000))
        assert large.height > small.height


class TestMBB:
    def test_node_boxes_cover_entries(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(800))
        curve = tree.curve
        for node in tree.walk_nodes():
            if node.is_leaf:
                continue
            for entry in node.entries:
                lo, hi = tree.decode_box(entry)
                child = tree.read_node(entry.child)
                box = tree.node_box(child)
                assert box is not None
                clo, chi = box
                assert all(l <= c for l, c in zip(lo, clo))
                assert all(h >= c for h, c in zip(hi, chi))
                # Every key in the child decodes inside the stored MBB.
                if child.is_leaf:
                    for e in child.entries:
                        cell = curve.decode(e.key)
                        assert all(
                            l <= c <= h for c, l, h in zip(cell, lo, hi)
                        )

    def test_mbb_updated_on_insert(self):
        tree = make_tree()
        curve = tree.curve
        items = sorted((curve.encode((i % 8, i % 8)), i) for i in range(50))
        tree.bulk_load(items)
        new_key = curve.encode((255, 255))
        tree.insert(new_key, 9999)
        root = tree.read_node(tree.root_page)
        box = tree.node_box(root)
        assert box is not None
        assert box[1] == (255, 255)


class TestInsertDelete:
    def test_insert_preserves_order(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(200))
        rng = random.Random(7)
        extra = []
        for i in range(300):
            key = rng.randrange(tree.curve.max_value)
            tree.insert(key, 100_000 + i)
            extra.append((key, 100_000 + i))
        result = tree.items()
        keys = [k for k, _ in result]
        assert keys == sorted(keys)
        assert len(result) == 500

    def test_insert_into_empty(self):
        tree = make_tree()
        tree.insert(42, 0)
        assert tree.items() == [(42, 0)]

    def test_delete_exact_match(self):
        tree = make_tree()
        items = keyed_items(300)
        tree.bulk_load(items)
        key, ptr = items[150]
        assert tree.delete(key, ptr)
        assert (key, ptr) not in tree.items()
        assert tree.entry_count == 299

    def test_delete_missing_returns_false(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(50))
        assert not tree.delete(10**9, 0)
        assert not tree.delete(keyed_items(50)[0][0], 10**9)

    def test_delete_among_duplicates(self):
        tree = make_tree(page_size=128)
        items = [(7, i) for i in range(200)]
        tree.bulk_load(items)
        assert tree.delete(7, 100)
        remaining = tree.items()
        assert len(remaining) == 199
        assert (7, 100) not in remaining

    def test_delete_all(self):
        tree = make_tree()
        items = keyed_items(120)
        tree.bulk_load(items)
        for key, ptr in items:
            assert tree.delete(key, ptr)
        assert tree.items() == []


class TestLookupAndScan:
    def test_find_entries(self):
        tree = make_tree()
        items = keyed_items(400)
        tree.bulk_load(items)
        key = items[37][0]
        expected = [ptr for k, ptr in items if k == key]
        assert sorted(e.ptr for e in tree.find_entries(key)) == sorted(expected)

    def test_find_entries_absent_key(self):
        tree = make_tree()
        tree.bulk_load([(2, 0), (4, 1)])
        assert tree.find_entries(3) == []

    def test_leaf_chain_covers_everything(self):
        tree = make_tree(page_size=128)
        items = keyed_items(1000)
        tree.bulk_load(items)
        assert [(e.key, e.ptr) for e in tree.leaf_entries()] == items


class TestAccounting:
    def test_reads_counted(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(500))
        before = tree.page_accesses
        tree.find_entries(12345)
        assert tree.page_accesses > before

    def test_walk_nodes_not_counted(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(500))
        before = tree.page_accesses
        list(tree.walk_nodes())
        assert tree.page_accesses == before

    def test_bulk_load_writes_each_page_once(self):
        tree = make_tree()
        tree.bulk_load(keyed_items(500))
        assert tree.pagefile.counter.writes == tree.num_pages

"""Legacy setup shim.

The benchmark environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which build an editable wheel) fail.  Keeping a setup.py
and omitting ``[build-system]`` from pyproject.toml makes ``pip install -e .``
take the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SPB-tree: efficient metric indexing for similarity search and "
        "similarity joins (reproduction of Chen et al., ICDE 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)

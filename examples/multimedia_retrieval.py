"""Multimedia retrieval: content-based image search over color histograms.

The paper's first motivating application (§1): "in multimedia settings,
similarity search can be utilized to retrieve images similar to a specified
image."  Images are represented by 16-dimensional color histograms compared
under the L5-norm (the paper's Color dataset); we index them with an
SPB-tree, run a kNN image search, compare against the M-tree baseline, and
show the cost model predicting query cost before execution.

Run:  python examples/multimedia_retrieval.py
"""

from repro import CostModel, MinkowskiDistance, MTree, SPBTree
from repro.datasets import generate_color


def main() -> None:
    histograms = generate_color(3000, seed=42)
    metric = MinkowskiDistance(5)

    print(f"Indexing {len(histograms)} image histograms (16-d, L5-norm) ...")
    spb = SPBTree.build(histograms, metric, num_pivots=5, seed=7)
    mtree = MTree.build(histograms, metric, seed=7)
    print(
        f"  SPB-tree: {spb.size_in_bytes / 1024:7.1f} KB, "
        f"{spb.distance_computations:,} build distances"
    )
    print(
        f"  M-tree:   {mtree.size_in_bytes / 1024:7.1f} KB, "
        f"{mtree.distance_computations:,} build distances"
    )

    # A user supplies a query image; find the 10 most similar ones.
    query = histograms[17]
    model = CostModel(spb)
    estimate = model.estimate_knn(query, 10)
    print(
        f"\nCost model predicts ~{estimate.edc:.0f} distance computations "
        f"and ~{estimate.epa:.0f} page accesses for this 10-NN query."
    )

    spb.reset_counters()
    spb.flush_cache()
    results = spb.knn_query(query, 10)
    print(
        f"SPB-tree 10-NN: {spb.distance_computations} distance "
        f"computations, {spb.page_accesses} page accesses"
    )

    mtree.reset_counters()
    mtree_results = mtree.knn_query(query, 10)
    print(
        f"M-tree   10-NN: {mtree.distance_computations} distance "
        f"computations, {mtree.page_accesses} page accesses"
    )

    assert [d for d, _ in results] == [d for d, _ in mtree_results]
    print("\nTop matches (distance, first 4 histogram bins):")
    for dist, image in results[:5]:
        bins = ", ".join(f"{b:.3f}" for b in image[:4])
        print(f"  d={dist:.4f}  [{bins}, ...]")


if __name__ == "__main__":
    main()

"""Data integration: near-duplicate detection with a similarity join.

The paper's §5.1 use case: "in a sales data warehouse, due to typing
mistakes ... product and customer names in sales records may not be
matching exactly with those in the master product catalog"; a similarity
join under edit distance eliminates such errors.

We simulate a master catalog and a dirty feed containing typo'd copies,
then run the paper's SJA (merge join over two Z-order SPB-trees sharing a
pivot table) and compare it with the Quickjoin baseline.

Run:  python examples/data_integration_join.py
"""

import random

from repro import EditDistance, SPBTree, quickjoin, select_pivots, similarity_join
from repro.datasets import generate_words


def corrupt(word: str, rng: random.Random) -> str:
    """Introduce one typo: substitution, insertion, or deletion."""
    pos = rng.randrange(len(word))
    op = rng.random()
    if op < 0.34:
        return word[:pos] + rng.choice("abcdefghij") + word[pos + 1 :]
    if op < 0.67:
        return word[:pos] + rng.choice("abcdefghij") + word[pos:]
    return word[:pos] + word[pos + 1 :] if len(word) > 2 else word + "x"


def main() -> None:
    rng = random.Random(7)
    metric = EditDistance()

    catalog = generate_words(1500, seed=42)
    # The dirty feed: typo'd catalog entries mixed with unrelated records.
    dirty = [corrupt(w, rng) for w in catalog[:300]] + generate_words(
        700, seed=99
    )

    print(
        f"Master catalog: {len(catalog)} names; dirty feed: {len(dirty)} "
        "records (300 contain one typo each)."
    )

    # SJA requires both SPB-trees to share one pivot table and the Z-curve.
    pivots = select_pivots(catalog, 5, metric, seed=7)
    d_plus = metric.max_distance(catalog)
    tree_dirty = SPBTree.build(
        dirty, metric, pivots=pivots, d_plus=d_plus, curve="z"
    )
    tree_catalog = SPBTree.build(
        catalog, metric, pivots=pivots, d_plus=d_plus, curve="z"
    )

    result = similarity_join(tree_dirty, tree_catalog, 1)
    print(
        f"\nSJA: {len(result.pairs)} candidate matches within edit "
        f"distance 1\n  cost: {result.stats.distance_computations:,} "
        f"distance computations, {result.stats.page_accesses} page "
        f"accesses, {result.stats.elapsed_seconds:.2f}s\n"
        f"  (a nested loop would need "
        f"{len(dirty) * len(catalog):,} distance computations)"
    )

    qj = quickjoin(dirty, catalog, metric, 1, seed=7)
    print(
        f"QJA: {len(qj.pairs)} matches, "
        f"{qj.stats.distance_computations:,} distance computations "
        f"(in-memory, no index reuse)"
    )
    assert len(qj.pairs) == len(result.pairs)

    print("\nSample matches (dirty record -> catalog name):")
    for dirty_rec, master_rec in result.pairs[:5]:
        print(f"  {dirty_rec!r} -> {master_rec!r}")


if __name__ == "__main__":
    main()

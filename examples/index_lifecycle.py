"""Index lifecycle: persistence, updates, compaction, counting queries.

A DBMS-flavoured tour of the operational features around the SPB-tree:
build once, save to disk, reopen in a "new process", serve queries, absorb
inserts and deletes, watch the tombstones accumulate, compact with
rebuild(), and use counting queries for cheap selectivity checks.

Run:  python examples/index_lifecycle.py
"""

import shutil
import tempfile

from repro import EditDistance, SPBTree, load_tree, save_tree
from repro.datasets import generate_words


def main() -> None:
    words = generate_words(2500, seed=42)
    metric = EditDistance()

    print(f"Building an SPB-tree over {len(words)} words ...")
    tree = SPBTree.build(words, metric, num_pivots=5, seed=7)
    print(f"  storage: {tree.size_in_bytes / 1024:.0f} KB")

    # --- persistence -----------------------------------------------------
    directory = tempfile.mkdtemp(prefix="spb-index-")
    try:
        save_tree(tree, directory)
        print(f"\nSaved to {directory}; reopening as a fresh process would:")
        reopened = load_tree(directory, EditDistance())
        query = words[500]
        print(
            f"  RQ({query!r}, 1) -> "
            f"{sorted(reopened.range_query(query, 1))[:4]} ..."
        )

        # --- updates -----------------------------------------------------
        print("\nApplying updates: 200 deletions, 50 insertions ...")
        for w in words[:200]:
            reopened.delete(w)
        for i in range(50):
            reopened.insert(f"brandnewterm{i:02d}")
        print(
            f"  live objects: {len(reopened)}  |  RAF still holds "
            f"{reopened.raf.size_in_bytes / 1024:.0f} KB (tombstones included)"
        )

        # --- counting queries ---------------------------------------------
        reopened.reset_counters()
        reopened.flush_cache()
        count = reopened.range_count(query, 2)
        count_pa = reopened.page_accesses
        reopened.reset_counters()
        reopened.flush_cache()
        results = reopened.range_query(query, 2)
        full_pa = reopened.page_accesses
        print(
            f"\nSelectivity check: |RQ(q, 2)| = {count} "
            f"(count: {count_pa} page accesses vs full query: {full_pa})"
        )
        assert count == len(results)

        # --- compaction ----------------------------------------------------
        compact = reopened.rebuild()
        print(
            f"\nRebuilt: {reopened.raf.size_in_bytes / 1024:.0f} KB -> "
            f"{compact.raf.size_in_bytes / 1024:.0f} KB RAF "
            f"({len(compact)} live objects, pivots reused)"
        )
        assert sorted(compact.range_query(query, 1)) == sorted(
            reopened.range_query(query, 1)
        )
        print("Compacted index answers identically. Lifecycle complete.")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()

"""Computational biology: similar protein/DNA sequence identification.

The paper's §1: "in computational biology, similarity search can also be
employed to identify similar protein sequences."  We index DNA 108-mers
under the tri-gram angular distance (the metric form of the paper's "cosine
similarity under tri-gram counting space") and show why the *greedy* kNN
traversal is the right choice on this low-precision dataset (§4.3,
Table 5), plus the effect of the per-query RAF cache (Fig. 10).

Run:  python examples/dna_search.py
"""

from repro import SPBTree, TriGramAngularDistance
from repro.datasets import generate_dna


def main() -> None:
    reads = generate_dna(1500, seed=42)
    metric = TriGramAngularDistance()

    print(f"Indexing {len(reads)} DNA 108-mers (tri-gram angular metric) ...")
    tree = SPBTree.build(reads, metric, num_pivots=5, seed=7)
    query = reads[3]

    print("\nTraversal strategies for 8-NN (Table 5's comparison):")
    for traversal in ("incremental", "greedy"):
        tree.reset_counters()
        tree.flush_cache()
        results = tree.knn_query(query, 8, traversal=traversal)
        print(
            f"  {traversal:11s}: {tree.distance_computations:5d} distance "
            f"computations, {tree.page_accesses:4d} page accesses"
        )

    print("\nEffect of the RAF cache (Fig. 10's experiment):")
    for cache in (0, 32, 128):
        cached = SPBTree.build(
            reads, metric, num_pivots=5, seed=7, cache_pages=cache
        )
        cached.reset_counters()
        cached.flush_cache()
        cached.knn_query(query, 8)
        print(
            f"  cache {cache:3d} pages: {cached.page_accesses:4d} page "
            "accesses"
        )

    print("\nClosest reads to the query (greedy traversal):")
    tree.flush_cache()
    for dist, read in tree.knn_query(query, 4, traversal="greedy"):
        marker = "  (the query itself)" if read == query else ""
        print(f"  d={dist:.4f}  {read[:48]}...{marker}")


if __name__ == "__main__":
    main()

"""Quickstart: index a word list and run similarity queries.

This reproduces the paper's running example (§4.1): a dictionary under edit
distance, range queries ("all words within k typos") and kNN queries ("the
most similar words").

Run:  python examples/quickstart.py
"""

from repro import EditDistance, SPBTree
from repro.datasets import generate_words


def main() -> None:
    # A small pseudo-English dictionary plus the paper's example words.
    words = generate_words(2000, seed=42) + [
        "citrate",
        "defoliates",
        "defoliated",
        "defoliating",
        "defoliation",
    ]
    metric = EditDistance()

    print(f"Building an SPB-tree over {len(words)} words ...")
    tree = SPBTree.build(words, metric, num_pivots=5, seed=7)
    print(
        f"  pivots: {tree.space.pivots}\n"
        f"  storage: {tree.size_in_bytes / 1024:.1f} KB "
        f"(B+-tree {tree.btree.num_pages} pages, RAF {tree.raf.num_pages} pages)\n"
        f"  construction distance computations: "
        f"{tree.distance_computations:,} (= |O| x |P|)"
    )

    # Range query: the paper's §4.1 example.
    tree.reset_counters()
    result = tree.range_query("defoliate", 1)
    print(
        f"\nRQ('defoliate', O, 1) = {sorted(result)}\n"
        f"  cost: {tree.distance_computations} distance computations, "
        f"{tree.page_accesses} page accesses"
    )

    # kNN query.
    tree.reset_counters()
    neighbours = tree.knn_query("defoliate", 3)
    print("\nkNN('defoliate', 3):")
    for dist, word in neighbours:
        print(f"  {word!r} at edit distance {dist:.0f}")
    print(
        f"  cost: {tree.distance_computations} distance computations, "
        f"{tree.page_accesses} page accesses "
        f"(brute force would need {len(words)})"
    )

    # Updates are cheap: |P| distance computations per insert (Appendix C).
    tree.reset_counters()
    tree.insert("defoliatee")
    print(
        f"\nInserted 'defoliatee' with just "
        f"{tree.distance_computations} distance computations"
    )
    assert "defoliatee" in tree.range_query("defoliate", 1)
    tree.delete("defoliatee")
    print("Deleted it again; index is consistent.")


if __name__ == "__main__":
    main()

"""Benchmarks for Fig. 10: kNN cost vs. RAF cache size.

Regenerate the full figure with ``python -m repro.experiments.fig10_cache``.
"""

import pytest

from benchmarks.conftest import build_tree


@pytest.mark.parametrize("cache", [0, 32, 128])
def test_knn_with_cache_size(benchmark, color_ds, cache):
    tree = build_tree(color_ds, cache_pages=cache)
    q = color_ds.queries[0]

    def query():
        tree.flush_cache()
        return tree.knn_query(q, 8)

    assert len(benchmark(query)) == 8

"""Benchmarks for Fig. 12: range query cost of the four MAMs.

Regenerate the full figure with ``python -m repro.experiments.fig12_range``.
"""

import pytest

from repro.baselines import MIndex, MTree, OmniRTree
from repro.core.spbtree import SPBTree
from repro.experiments.common import radius_for


@pytest.fixture(scope="module")
def indexes(words_ds):
    return {
        "spb": SPBTree.build(
            words_ds.objects, words_ds.metric, d_plus=words_ds.d_plus, seed=7
        ),
        "mtree": MTree.build(words_ds.objects, words_ds.metric, seed=7),
        "omni": OmniRTree.build(words_ds.objects, words_ds.metric, seed=7),
        "mindex": MIndex.build(
            words_ds.objects, words_ds.metric, d_plus=words_ds.d_plus, seed=7
        ),
    }


@pytest.mark.parametrize("name", ["spb", "mtree", "omni", "mindex"])
def test_range_query(benchmark, indexes, words_ds, name):
    index = indexes[name]
    q = words_ds.queries[0]
    radius = radius_for(words_ds, 8)
    reference = len(indexes["spb"].range_query(q, radius))
    result = benchmark(lambda: index.range_query(q, radius))
    assert len(result) == reference

"""Tuning A/B smoke: the self-tuner must beat every fixed strategy.

Runs one mixed workload (kNN, range queries, then a burst of
distribution-shifting inserts, then the query mix again — now probing
the drifted region) over identical cold-started copies of an on-disk
sharded index:

* four **fixed** passes — one per (traversal, strategy) arm, pinned for
  every kNN query, nothing adapted;
* one **tuned** pass — kNN routed through the
  :class:`~repro.tuning.TraversalAdvisor`, with a
  :class:`~repro.tuning.Tuner` ticking every few operations so it can
  recalibrate the cost models, adapt the buffer pools, and — when the
  insert burst drags HFI's objective (Definition 1 precision) past the
  drift threshold — re-select pivots and rebuild through a checkpoint
  mid-workload.  The fixed arms keep serving on the stale pivots; that
  maintenance gap is exactly what self-tuning buys.

Claims enforced (exit nonzero on any failure):

* the tuned pass spends fewer total compdists AND has a lower p95 query
  latency than *every* fixed arm (the acceptance bar for closing the
  EDC/EPA loop online);
* the calibrated EDC prediction error (median ``|log(pred/actual)|``)
  is reported and below ``--error-bound``;
* with tuning disabled, per-query (compdists, page_accesses) through the
  :class:`~repro.service.QueryEngine` are bit-identical to calling the
  index directly — the subsystem is zero-cost when off.

Appends one record to ``results/BENCH_tuning.json``.  CI runs this as
the tuning-ab smoke.

Usage::

    PYTHONPATH=src python benchmarks/tuning_ab.py \
        [--size 600] [--queries 36] [--inserts 150] \
        [--error-bound 1.5] [--out results/BENCH_tuning.json]
"""

from __future__ import annotations

import argparse
import gc
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster import ShardedIndex
from repro.datasets import generate_words
from repro.distance import EditDistance
from repro.net.bench import append_series
from repro.service import QueryEngine
from repro.service.context import QueryContext
from repro.tuning import Tuner

ARMS = [
    ("incremental", "best-first"),
    ("greedy", "best-first"),
    ("incremental", "broadcast"),
    ("greedy", "broadcast"),
]

KS = (4, 8)

#: Executions per query op per sweep: counters come from the first (the
#: science is deterministic), latency is the min of all (noise-robust
#: timing).
REPEATS = 3

#: Full re-runs of the measured post-insert section.  The sweeps are
#: separated by ~tens of seconds of wall time, so a machine-load burst
#: that inflates one sweep's timings is discarded by the per-op min.
SWEEPS = 3


def build_workload(args, tmp):
    """Build the base cluster once and derive the shared op sections.

    Returns ``(base_directory, (phase1, burst, phase3))`` — three lists
    of ``("knn", q, k)``, ``("range", q, r)``, and ``("insert", w)``
    tuples replayed identically by every pass: a measured pre-drift
    query mix, an unmeasured insert burst, and the measured post-drift
    section.  The inserts are deliberately
    *drifted* (reversed words plus a suffix): pivots HFI-selected on the
    pre-drift data discriminate them poorly, so Definition 1 precision
    sags as the burst lands — every pass faces the same drift; only the
    tuned one may react to it.
    """
    words = generate_words(args.size + 3 * args.queries, seed=23)
    base = words[: args.size]
    # Regular queries use mid-length words: edit distance is O(len^2),
    # so length outliers in the mix would own the latency tail and bury
    # the drift signal the hot probes are there to measure.
    candidates = sorted(words[args.size :], key=len)
    pool = candidates[args.queries : 2 * args.queries]
    edit = EditDistance()
    directory = os.path.join(tmp, "base")
    idx = ShardedIndex.build(
        base, edit, shards=4, num_pivots=3, cache_pages=4, seed=11
    )
    idx.save(directory)

    inserts = [w[::-1] + "xq" for w in base[: args.inserts]]

    def query_mix(queries):
        ops = []
        for i, q in enumerate(queries):
            ops.append(("knn", q, KS[i % len(KS)]))
            if i % 3 == 0:
                ops.append(("range", q, 2.0))
        return ops

    phase1 = query_mix(pool)
    burst = [("insert", w) for w in inserts]
    # Post-insert phase: queries *follow the drift*, as real traffic
    # does — the mix now probes the shifted region (the
    # reversed+suffixed form of each pool word), where pivots
    # HFI-selected on the pre-drift data discriminate worst.  These are
    # the costliest ops of the workload, so they own the latency tail
    # the p95 claim measures.
    drifted = [w[::-1] + "xq" for w in pool]
    phase3 = []
    for i, q in enumerate(drifted):
        # Both k values per drifted word: a *dense* tail makes the p95
        # comparison measure the systematic per-op gap instead of
        # whichever single op happens to sit at the quantile boundary.
        for k in KS:
            phase3.append(("knn", q, k))
        if i % 3 == 0:
            phase3.append(("range", q, 2.0))
    return directory, (phase1, burst, phase3)


def fresh_copy(base_directory, tmp, name):
    path = os.path.join(tmp, name)
    shutil.copytree(base_directory, path)
    return path


def summarize(counters, latencies):
    ordered = sorted(latencies)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return {
        "compdists": sum(c for c, _ in counters),
        "page_accesses": sum(p for _, p in counters),
        "queries": len(counters),
        "p95_ms": round(p95 * 1000.0, 3),
        "total_ms": round(sum(latencies) * 1000.0, 1),
    }


class _FixedPass:
    """One pinned-(traversal, strategy) replica of the workload."""

    def __init__(self, base_directory, tmp, arm):
        self.traversal, self.strategy = arm
        self.name = "/".join(arm)
        directory = fresh_copy(
            base_directory, tmp, f"fixed-{self.traversal}-{self.strategy}"
        )
        self.idx = ShardedIndex.open(directory, EditDistance(), wal_fsync=False)
        self.counters, self.latencies = [], []

    def run(self, op, attempt, slot=None):
        if op[0] == "insert":
            if attempt == 0 and slot is None:
                self.idx.insert(op[1])
            return
        ctx = QueryContext()
        t0 = time.process_time()
        if op[0] == "knn":
            self.idx.knn_query(
                op[1], op[2], traversal=self.traversal, context=ctx,
                strategy=self.strategy,
            )
        else:
            self.idx.range_query(op[1], op[2], context=ctx)
        elapsed = time.process_time() - t0
        if slot is not None:
            self.latencies[slot] = min(self.latencies[slot], elapsed)
        elif attempt == 0:
            self.counters.append((ctx.compdists, ctx.page_accesses))
            self.latencies.append(elapsed)
        else:
            self.latencies[-1] = min(self.latencies[-1], elapsed)

    def finish(self):
        self.idx.close()
        return summarize(self.counters, self.latencies)


class _TunedPass:
    """The advised replica: advisor on the kNN path, tuner ticking."""

    def __init__(self, base_directory, tmp):
        directory = fresh_copy(base_directory, tmp, "tuned")
        self.idx = ShardedIndex.open(directory, EditDistance(), wal_fsync=False)
        self.tuner = Tuner(
            self.idx,
            epsilon=0.02,
            seed=5,
            buffer_bounds=(4, 128),
            pivot_check_every=2,
            pivot_drift_threshold=0.1,
            auto_pivot_rebuild=True,
            pivot_sample=192,
            pivot_pairs=320,
        )
        self.counters, self.latencies = [], []

    def run(self, op, attempt, slot=None):
        if op[0] == "insert":
            if attempt == 0 and slot is None:
                self.idx.insert(op[1])
            return
        ctx = QueryContext()
        t0 = time.process_time()
        if op[0] == "knn":
            self.tuner.advisor.run_knn(self.idx, op[1], op[2], ctx)
        else:
            self.idx.range_query(op[1], op[2], context=ctx)
        elapsed = time.process_time() - t0
        if slot is not None:
            self.latencies[slot] = min(self.latencies[slot], elapsed)
        elif attempt == 0:
            self.counters.append((ctx.compdists, ctx.page_accesses))
            self.latencies.append(elapsed)
        else:
            self.latencies[-1] = min(self.latencies[-1], elapsed)

    def tick(self):
        self.tuner.tick()

    def finish(self):
        self.tuner.tick()
        status = self.tuner.status()
        out = summarize(self.counters, self.latencies)
        out.update(
            {
                "policy": status["policy"],
                "rebalances": status["rebalances"],
                "pivot_rebuilds": status["pivot_rebuilds"],
                "buffer_resizes": status["buffer_resizes"],
                "decisions": status["advisor"]["decisions"],
                "explorations": status["advisor"]["explorations"],
                "calibrations": status["calibration"]["calibrations"],
                "error_edc": status["calibration"]["error"]["edc"],
                "error_epa": status["calibration"]["error"]["epa"],
            }
        )
        self.tuner.close()
        self.idx.close()
        return out


def run_passes(base_directory, tmp, sections, tick_every):
    """Replay the workload on every pass *interleaved* op by op.

    Each operation runs on all five index copies back-to-back, in
    ``REPEATS`` rounds — round-robin over the passes *within* each round
    — so a machine-load burst lands on every pass in the round it hits,
    and the per-pass min-over-rounds discards it for all of them at
    once.  Counters come from the first round (the science is
    deterministic; the clock is not), with the collector paused.  The
    tuner ticks every ``tick_every`` operations — the same deterministic
    workload positions it would see in a live deployment, including
    mid-burst (which is where the drift check fires).

    The insert burst itself is *unmeasured* (loading, not serving), and
    the post-burst section is re-swept ``SWEEPS`` times with each op's
    latency the min across sweeps: insert churn and machine-load bursts
    otherwise dominate p95 and drown the comparison in noise that hits
    every pass alike.
    """
    phase1, burst, phase3 = sections
    fixed = [_FixedPass(base_directory, tmp, arm) for arm in ARMS]
    tuned = _TunedPass(base_directory, tmp)
    passes = fixed + [tuned]

    def settle(ops, rounds=1):
        # Untimed warmup, identical on every copy (direct calls, no
        # advisor, throwaway contexts): cold-CPU start and post-insert
        # cold structures otherwise land 20-30% slow at the measured
        # tail for reasons that have nothing to do with index policy.
        warm = [op for op in ops if op[0] == "knn"][:12]
        for _ in range(rounds):
            for p in passes:
                for op in warm:
                    p.idx.knn_query(op[1], op[2], context=QueryContext())

    opn = 0

    def step(op, slot=None):
        nonlocal opn
        rounds = 1 if op[0] == "insert" else REPEATS
        for attempt in range(rounds):
            for p in passes:
                p.run(op, attempt, slot)
        opn += 1
        if opn % tick_every == 0:
            tuned.tick()

    settle(phase1, rounds=2)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for sweep in range(SWEEPS):
            for j, op in enumerate(phase1):
                step(op, slot=None if sweep == 0 else j)
        for op in burst:
            step(op)
        settle(phase3)
        base_slot = len(tuned.latencies)
        for sweep in range(SWEEPS):
            for j, op in enumerate(phase3):
                step(op, slot=None if sweep == 0 else base_slot + j)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {p.name: p.finish() for p in fixed}, tuned.finish()


def run_disabled_check(base_directory, tmp, sections):
    """Tuning off: engine counters must equal direct-call counters."""
    phase1, _, phase3 = sections
    queries = [op for op in phase1 + phase3 if op[0] != "insert"][:24]
    direct = []
    idx = ShardedIndex.open(
        fresh_copy(base_directory, tmp, "plain-direct"),
        EditDistance(),
        wal_fsync=False,
    )
    for op in queries:
        ctx = QueryContext()
        if op[0] == "knn":
            idx.knn_query(op[1], op[2], context=ctx)
        else:
            idx.range_query(op[1], op[2], context=ctx)
        direct.append((ctx.compdists, ctx.page_accesses))
    idx.close()
    via_engine = []
    idx = ShardedIndex.open(
        fresh_copy(base_directory, tmp, "plain-engine"),
        EditDistance(),
        wal_fsync=False,
    )
    with QueryEngine(idx, workers=1) as engine:
        for op in queries:
            pending = engine.submit(op[0], op[1], op[2])
            pending.result()
            via_engine.append(
                (pending.context.compdists, pending.context.page_accesses)
            )
    idx.close()
    return direct == via_engine


def run(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="tuning-ab-") as tmp:
        base_directory, sections = build_workload(args, tmp)
        arms, tuned = run_passes(
            base_directory, tmp, sections, args.tick_every
        )
        identical = run_disabled_check(base_directory, tmp, sections)
        ops_total = sum(len(s) for s in sections)

    beats = {
        name: (
            tuned["compdists"] < fixed["compdists"]
            and tuned["p95_ms"] < fixed["p95_ms"]
        )
        for name, fixed in arms.items()
    }
    tuned_beats_all = all(beats.values())
    error_edc = tuned["error_edc"]
    error_ok = error_edc is not None and error_edc <= args.error_bound

    for name, fixed in sorted(arms.items()):
        print(
            f"fixed   {name:<24} compdists {fixed['compdists']:>8} "
            f"pa {fixed['page_accesses']:>6} p95 {fixed['p95_ms']:>8.3f}ms"
        )
    print(
        f"tuned   {'(advisor+tuner)':<24} compdists {tuned['compdists']:>8} "
        f"pa {tuned['page_accesses']:>6} p95 {tuned['p95_ms']:>8.3f}ms  "
        f"pivot_rebuilds {tuned['pivot_rebuilds']} buffer_resizes "
        f"{tuned['buffer_resizes']} err_edc {error_edc}"
    )
    print(
        f"tuned beats all arms: {tuned_beats_all}; "
        f"counters identical when disabled: {identical}; "
        f"prediction error ok: {error_ok}"
    )

    record = {
        "size": args.size,
        "inserts": args.inserts,
        "ops": ops_total,
        "arms": arms,
        "tuned": tuned,
        "beats": beats,
        "tuned_beats_all": tuned_beats_all,
        "counters_identical": identical,
        "error_bound": args.error_bound,
        "prediction_error_ok": error_ok,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    append_series(args.out, record)
    print(f"appended to {args.out}")

    if not tuned_beats_all:
        print("FAIL: a fixed arm beat the tuner", file=sys.stderr)
        return 1
    if not identical:
        print("FAIL: disabled tuning changed the counters", file=sys.stderr)
        return 1
    if not error_ok:
        print(
            f"FAIL: EDC prediction error {error_edc} exceeds "
            f"--error-bound {args.error_bound}",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=600)
    parser.add_argument("--queries", type=int, default=36)
    parser.add_argument("--inserts", type=int, default=300)
    parser.add_argument("--tick-every", type=int, default=10)
    parser.add_argument("--error-bound", type=float, default=1.5)
    parser.add_argument("--out", default="results/BENCH_tuning.json")
    return run(parser.parse_args())


if __name__ == "__main__":
    raise SystemExit(main())

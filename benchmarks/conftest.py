"""Shared fixtures for the pytest-benchmark suite.

Each ``benchmarks/test_*.py`` corresponds to one table or figure of the
paper's evaluation (see DESIGN.md §2).  The benchmarks exercise the exact
operation the artifact measures, at a cardinality small enough to run in
seconds; the full sweeps that regenerate the tables/figures live in
``repro.experiments`` (``python -m repro.experiments.runall``).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.core.pivots import select_pivots
from repro.core.spbtree import SPBTree
from repro.datasets import load_dataset

BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SIZE", "800"))


@pytest.fixture(scope="session")
def words_ds():
    return load_dataset("words", size=BENCH_SIZE, num_queries=10)


@pytest.fixture(scope="session")
def color_ds():
    return load_dataset("color", size=BENCH_SIZE, num_queries=10)


@pytest.fixture(scope="session")
def dna_ds():
    return load_dataset("dna", size=max(200, BENCH_SIZE // 2), num_queries=10)


@pytest.fixture(scope="session")
def synthetic_ds():
    return load_dataset("synthetic", size=BENCH_SIZE, num_queries=10)


def build_tree(dataset, curve="hilbert", **kwargs):
    return SPBTree.build(
        dataset.objects,
        dataset.metric,
        d_plus=dataset.d_plus,
        curve=curve,
        seed=7,
        **kwargs,
    )


@pytest.fixture(scope="session")
def words_tree(words_ds):
    return build_tree(words_ds)


@pytest.fixture(scope="session")
def color_tree(color_ds):
    return build_tree(color_ds)


@pytest.fixture(scope="session")
def join_trees(words_ds):
    """Two Z-order SPB-trees sharing a pivot table, for SJA benchmarks."""
    half = len(words_ds.objects) // 2
    set_q, set_o = words_ds.objects[:half], words_ds.objects[half:]
    pivots = select_pivots(set_o, 5, words_ds.metric, seed=7)
    tree_q = SPBTree.build(
        set_q, words_ds.metric, pivots=pivots, d_plus=words_ds.d_plus,
        curve="z",
    )
    tree_o = SPBTree.build(
        set_o, words_ds.metric, pivots=pivots, d_plus=words_ds.d_plus,
        curve="z",
    )
    return words_ds, set_q, set_o, tree_q, tree_o

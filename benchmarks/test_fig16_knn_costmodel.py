"""Benchmarks for Fig. 16: kNN cost model evaluation speed and accuracy.

Regenerate the full figure with
``python -m repro.experiments.fig16_knn_costmodel``.
"""

import pytest

from repro.core.costmodel import CostModel


@pytest.fixture(scope="module")
def model(color_tree):
    return CostModel(color_tree)


def test_estimate_knn(benchmark, model, color_ds):
    q = color_ds.queries[0]
    estimate = benchmark(lambda: model.estimate_knn(q, 8))
    assert estimate.radius > 0


def test_knn_radius_estimate_tracks_actual(model, color_tree, color_ds):
    ratios = []
    for q in color_ds.queries:
        est = model.estimate_knn(q, 8)
        actual = color_tree.knn_query(q, 8)[-1][0]
        if actual > 0:
            ratios.append(est.radius / actual)
    mean = sum(ratios) / len(ratios)
    assert 0.5 < mean < 2.0

"""Benchmarks for Fig. 15: range-query cost model evaluation speed and
accuracy.

Regenerate the full figure with
``python -m repro.experiments.fig15_range_costmodel``.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.experiments.common import radius_for


@pytest.fixture(scope="module")
def model(color_tree):
    return CostModel(color_tree)


def test_estimate_range(benchmark, model, color_ds):
    q = color_ds.queries[0]
    radius = radius_for(color_ds, 8)
    estimate = benchmark(lambda: model.estimate_range(q, radius))
    assert estimate.edc >= model.tree.space.num_pivots


def test_range_model_accuracy(model, color_tree, color_ds):
    """Assert the paper's qualitative claim: reasonable average accuracy."""
    radius = radius_for(color_ds, 8)
    accs = []
    for q in color_ds.queries:
        est = model.estimate_range(q, radius)
        color_tree.reset_counters()
        color_tree.range_query(q, radius)
        actual = color_tree.distance_computations
        if actual:
            accs.append(max(0.0, 1 - abs(actual - est.edc) / actual))
    assert sum(accs) / len(accs) > 0.6

"""Benchmarks for Fig. 11: kNN cost vs. δ granularity.

Regenerate the full figure with ``python -m repro.experiments.fig11_delta``.
"""

import pytest

from benchmarks.conftest import build_tree


@pytest.mark.parametrize("fraction", [0.001, 0.005, 0.009])
def test_knn_under_delta(benchmark, color_ds, fraction):
    tree = build_tree(color_ds, delta=color_ds.d_plus * fraction)
    q = color_ds.queries[0]
    result = benchmark(lambda: tree.knn_query(q, 8))
    assert len(result) == 8

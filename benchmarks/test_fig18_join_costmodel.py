"""Benchmarks for Fig. 18: similarity-join cost model accuracy.

Regenerate the full figure with
``python -m repro.experiments.fig18_join_costmodel``.
"""

from repro.core.costmodel import CostModel
from repro.core.join import similarity_join
from repro.experiments.common import radius_for


def test_estimate_join(benchmark, join_trees):
    ds, _, _, tree_q, tree_o = join_trees
    epsilon = radius_for(ds, 6)
    estimate = benchmark(
        lambda: CostModel.estimate_join(tree_q, tree_o, epsilon)
    )
    assert estimate.epa > 0


def test_join_model_accuracy(join_trees):
    ds, _, _, tree_q, tree_o = join_trees
    epsilon = radius_for(ds, 6)
    estimate = CostModel.estimate_join(tree_q, tree_o, epsilon)
    result = similarity_join(tree_q, tree_o, epsilon)
    actual = result.stats.distance_computations
    if actual > 50:
        accuracy = max(0.0, 1 - abs(actual - estimate.edc) / actual)
        assert accuracy > 0.5

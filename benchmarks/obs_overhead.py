"""Observability-overhead smoke: tracing must not change the science.

Runs the same Fig.-12-style range workload twice over one on-disk
sharded index — once with observability fully off, once with everything
on (metrics registry, per-query traces, slow log at threshold 0, flight
recorder) — and enforces two claims the tracing layer makes:

* **Bit-identical counters.**  Per-query ``compdists`` and
  ``page_accesses`` must match exactly between the two runs.  Tracing
  snapshots counters; it never adds to them.
* **Bounded wall-clock overhead.**  The fully-instrumented run may not
  exceed the quiet run by more than ``--max-overhead`` (a generous
  multiplier — CI machines are noisy; the point is catching a 10x
  regression, not benchmarking the fast path).

Every traced query must also reconcile (attributed span totals equal the
context totals) — the invariant is free to check here, so we do.

Appends one record to ``results/BENCH_obs_overhead.json`` and exits
nonzero on any mismatch.  CI runs this as the obs-overhead smoke.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py \
        [--size 600] [--queries 40] [--radius 2.0] \
        [--max-overhead 2.5] [--out results/BENCH_obs_overhead.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs
from repro.cluster import ShardedIndex
from repro.datasets import generate_words
from repro.distance import EditDistance
from repro.net.bench import append_series
from repro.obs.flight import FlightRecorder
from repro.obs.ids import new_trace_id
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import QueryTrace
from repro.service.context import QueryContext


def run_pass(directory, metric, queries, radius, instrumented, tmp):
    """One full pass over the workload on a cold-opened index.

    Returns ``(per_query_counters, elapsed_seconds, reconcile_failures)``.
    """
    slow_log = flight = None
    if instrumented:
        obs.enable()
        slow_log = SlowQueryLog(
            os.path.join(tmp, "slow.jsonl"), threshold_ms=0.0
        )
        flight = FlightRecorder(directory=os.path.join(tmp, "flight"))
    else:
        obs.disable()
    idx = ShardedIndex.open(directory, metric)
    counters = []
    failures = 0
    t0 = time.perf_counter()
    for q in queries:
        ctx = QueryContext()
        if instrumented:
            ctx.request_id = new_trace_id()
            ctx.trace = QueryTrace("range")
        out = idx.range_query(q, radius, context=ctx)
        counters.append((ctx.compdists, ctx.page_accesses))
        if instrumented:
            if ctx.trace.attributed_totals() != (
                ctx.compdists,
                ctx.page_accesses,
            ):
                failures += 1
            slow_log.maybe_record(
                "range", 0.001, context=ctx, result=out, source="bench"
            )
            flight.observe("range", context=ctx, result=out, source="bench")
    elapsed = time.perf_counter() - t0
    obs.disable()
    return counters, elapsed, failures


def run(args: argparse.Namespace) -> int:
    words = generate_words(args.size + args.queries, seed=23)
    base, queries = words[: args.size], words[args.size : args.size + args.queries]
    edit = EditDistance()

    with tempfile.TemporaryDirectory(prefix="obs-overhead-") as tmp:
        directory = os.path.join(tmp, "cluster")
        ShardedIndex.build(
            base, edit, shards=2, num_pivots=3, seed=11
        ).save(directory)

        quiet, t_quiet, _ = run_pass(
            directory, edit, queries, args.radius, False, tmp
        )
        loud, t_loud, bad = run_pass(
            directory, edit, queries, args.radius, True, tmp
        )

    identical = quiet == loud
    overhead = t_loud / t_quiet if t_quiet > 0 else float("inf")
    print(
        f"obs-overhead: {len(queries)} range queries, "
        f"quiet {t_quiet:.3f}s, instrumented {t_loud:.3f}s "
        f"({overhead:.2f}x), counters identical: {identical}, "
        f"reconcile failures: {bad}"
    )
    if not identical:
        diffs = [
            (i, a, b) for i, (a, b) in enumerate(zip(quiet, loud)) if a != b
        ]
        for i, a, b in diffs[:5]:
            print(f"  query {i}: quiet {a} != instrumented {b}")
        print("FAIL: tracing changed the counters", file=sys.stderr)
        return 1
    if bad:
        print(f"FAIL: {bad} traces did not reconcile", file=sys.stderr)
        return 1
    if overhead > args.max_overhead:
        print(
            f"FAIL: overhead {overhead:.2f}x exceeds "
            f"--max-overhead {args.max_overhead}",
            file=sys.stderr,
        )
        return 1

    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    append_series(
        args.out,
        {
            "size": args.size,
            "queries": len(queries),
            "radius": args.radius,
            "quiet_s": round(t_quiet, 4),
            "instrumented_s": round(t_loud, 4),
            "overhead_x": round(overhead, 3),
            "counters_identical": identical,
        },
    )
    print(f"ok: appended to {args.out}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=600)
    ap.add_argument("--queries", type=int, default=40)
    ap.add_argument("--radius", type=float, default=2.0)
    ap.add_argument(
        "--max-overhead", type=float, default=2.5,
        help="max allowed instrumented/quiet wall-clock ratio (default 2.5)",
    )
    ap.add_argument("--out", default="results/BENCH_obs_overhead.json")
    return run(ap.parse_args())


if __name__ == "__main__":
    sys.exit(main())

"""Benchmarks for Table 4: kNN cost under Hilbert vs. Z-order curves.

Regenerate the full table with ``python -m repro.experiments.table4_sfc``.
"""

import pytest

from benchmarks.conftest import build_tree


@pytest.fixture(scope="module")
def hilbert_tree(words_ds):
    return build_tree(words_ds, curve="hilbert")


@pytest.fixture(scope="module")
def z_tree(words_ds):
    return build_tree(words_ds, curve="z")


def test_knn_hilbert_curve(benchmark, hilbert_tree, words_ds):
    q = words_ds.queries[0]
    result = benchmark(lambda: hilbert_tree.knn_query(q, 8))
    assert len(result) == 8


def test_knn_z_curve(benchmark, z_tree, words_ds):
    q = words_ds.queries[0]
    result = benchmark(lambda: z_tree.knn_query(q, 8))
    assert len(result) == 8

"""Benchmarks for Fig. 14: SPB-tree query cost vs. cardinality.

Regenerate the full figure with
``python -m repro.experiments.fig14_scalability``.
"""

import pytest

from repro.core.spbtree import SPBTree
from repro.datasets import load_dataset
from repro.experiments.common import radius_for


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_range_query_scaling(benchmark, n):
    ds = load_dataset("synthetic", size=n, num_queries=5)
    tree = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    q = ds.queries[0]
    radius = radius_for(ds, 8)
    benchmark(lambda: tree.range_query(q, radius))


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_knn_query_scaling(benchmark, n):
    ds = load_dataset("synthetic", size=n, num_queries=5)
    tree = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    q = ds.queries[0]
    result = benchmark(lambda: tree.knn_query(q, 8))
    assert len(result) == 8

"""Benchmarks for Fig. 14: SPB-tree query cost vs. cardinality.

Regenerate the full figure with
``python -m repro.experiments.fig14_scalability``.
"""

import pytest

from repro.core.spbtree import SPBTree
from repro.datasets import load_dataset
from repro.experiments.common import radius_for


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_range_query_scaling(benchmark, n):
    ds = load_dataset("synthetic", size=n, num_queries=5)
    tree = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    q = ds.queries[0]
    radius = radius_for(ds, 8)
    benchmark(lambda: tree.range_query(q, radius))


@pytest.mark.parametrize("n", [400, 800, 1600])
def test_knn_query_scaling(benchmark, n):
    ds = load_dataset("synthetic", size=n, num_queries=5)
    tree = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    q = ds.queries[0]
    result = benchmark(lambda: tree.knn_query(q, 8))
    assert len(result) == 8


# ---------------------------------------------------------------------------
# Sharded-cluster series: the same workload on a ShardedIndex at 1/2/4/8
# shards vs. the single tree, reporting compdists and page accesses in
# ``extra_info`` alongside the wall-clock measurement.  On routable data the
# cluster's pruning keeps compdists within a few percent of the single tree.


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_sharded_range_query_scaling(benchmark, shards):
    from repro.cluster import ShardedIndex

    ds = load_dataset("synthetic", size=800, num_queries=5)
    single = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    cluster = ShardedIndex.build(
        ds.objects, ds.metric, shards=shards, d_plus=ds.d_plus, seed=7
    )
    q = ds.queries[0]
    radius = radius_for(ds, 8)
    expected = set(map(repr, single.range_query(q, radius)))
    single.reset_counters()
    single.range_query(q, radius)
    cluster.reset_counters()
    result = benchmark(lambda: cluster.range_query(q, radius))
    assert set(map(repr, result)) == expected
    benchmark.extra_info["shards"] = cluster.num_shards
    benchmark.extra_info["single_tree_compdists"] = (
        single.distance_computations
    )
    cluster.reset_counters()
    cluster.range_query(q, radius)
    benchmark.extra_info["cluster_compdists"] = (
        cluster.distance_computations
    )
    benchmark.extra_info["cluster_page_accesses"] = cluster.page_accesses


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
@pytest.mark.parametrize("strategy", ["best-first", "broadcast"])
def test_sharded_knn_query_scaling(benchmark, shards, strategy):
    from repro.cluster import ShardedIndex

    ds = load_dataset("synthetic", size=800, num_queries=5)
    single = SPBTree.build(ds.objects, ds.metric, d_plus=ds.d_plus, seed=7)
    cluster = ShardedIndex.build(
        ds.objects, ds.metric, shards=shards, d_plus=ds.d_plus, seed=7
    )
    q = ds.queries[0]
    expected = [d for d, _ in single.knn_query(q, 8)]
    single.reset_counters()
    single.knn_query(q, 8)
    result = benchmark(lambda: cluster.knn_query(q, 8, strategy=strategy))
    assert [d for d, _ in result] == pytest.approx(expected)
    benchmark.extra_info["shards"] = cluster.num_shards
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["single_tree_compdists"] = (
        single.distance_computations
    )
    cluster.reset_counters()
    cluster.knn_query(q, 8, strategy=strategy)
    benchmark.extra_info["cluster_compdists"] = (
        cluster.distance_computations
    )
    benchmark.extra_info["cluster_page_accesses"] = cluster.page_accesses

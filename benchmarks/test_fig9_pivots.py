"""Benchmarks for Fig. 9: query cost under different pivot selections.

Regenerate the full figure with ``python -m repro.experiments.fig9_pivots``.
"""

import pytest

from repro.core.pivots import select_pivots
from repro.core.spbtree import SPBTree


def _tree_with(dataset, method):
    pivots = select_pivots(dataset.objects, 5, dataset.metric, method=method, seed=7)
    return SPBTree.build(
        dataset.objects, dataset.metric, pivots=pivots, d_plus=dataset.d_plus
    )


@pytest.mark.parametrize("method", ["hfi", "hf", "spacing", "pca"])
def test_knn_under_pivot_method(benchmark, words_ds, method):
    tree = _tree_with(words_ds, method)
    q = words_ds.queries[0]
    result = benchmark(lambda: tree.knn_query(q, 8))
    assert len(result) == 8


def test_hfi_selection_itself(benchmark, words_ds):
    result = benchmark(
        lambda: select_pivots(
            words_ds.objects, 5, words_ds.metric, method="hfi", seed=7
        )
    )
    assert len(result) == 5

"""Benchmarks for Fig. 17: similarity join algorithms.

Regenerate the full figure with ``python -m repro.experiments.fig17_join``.
"""

import pytest

from repro.baselines import EDIndex, quickjoin
from repro.core.join import similarity_join
from repro.experiments.common import radius_for


def test_sja(benchmark, join_trees):
    ds, set_q, set_o, tree_q, tree_o = join_trees
    epsilon = radius_for(ds, 6)
    result = benchmark(lambda: similarity_join(tree_q, tree_o, epsilon))
    assert result.pairs is not None


def test_qja(benchmark, join_trees):
    ds, set_q, set_o, tree_q, tree_o = join_trees
    epsilon = radius_for(ds, 6)
    reference = len(similarity_join(tree_q, tree_o, epsilon).pairs)
    result = benchmark(
        lambda: quickjoin(set_q, set_o, ds.metric, epsilon, seed=7)
    )
    assert len(result.pairs) == reference


def test_edindex_join(benchmark, join_trees):
    ds, set_q, set_o, tree_q, tree_o = join_trees
    epsilon = radius_for(ds, 2)
    index = EDIndex.build(set_q, set_o, ds.metric, epsilon, seed=7)
    reference = len(similarity_join(tree_q, tree_o, epsilon).pairs)
    result = benchmark(lambda: index.join(epsilon))
    assert len(result.pairs) == reference

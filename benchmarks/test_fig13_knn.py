"""Benchmarks for Fig. 13: kNN query cost of the four MAMs.

Regenerate the full figure with ``python -m repro.experiments.fig13_knn``.
"""

import pytest

from benchmarks.test_fig12_range import indexes  # noqa: F401  (fixture)


@pytest.mark.parametrize("name", ["spb", "mtree", "omni", "mindex"])
@pytest.mark.parametrize("k", [1, 8, 32])
def test_knn_query(benchmark, indexes, words_ds, name, k):  # noqa: F811
    index = indexes[name]
    q = words_ds.queries[1]
    result = benchmark(lambda: index.knn_query(q, k))
    assert len(result) == k

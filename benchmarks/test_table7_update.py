"""Benchmarks for Table 7: per-insert update cost of the four MAMs.

Regenerate the full table with ``python -m repro.experiments.table7_update``.
"""

import itertools

import pytest

from repro.baselines import MIndex, MTree, OmniRTree
from repro.core.spbtree import SPBTree
from repro.datasets import generate_words

_COUNTER = itertools.count()


def _fresh_word():
    return f"zq{next(_COUNTER):08d}"


@pytest.fixture(scope="module")
def built(words_ds):
    return {
        "spb": SPBTree.build(
            words_ds.objects, words_ds.metric, d_plus=words_ds.d_plus, seed=7
        ),
        "mtree": MTree.build(words_ds.objects, words_ds.metric, seed=7),
        "omni": OmniRTree.build(words_ds.objects, words_ds.metric, seed=7),
        "mindex": MIndex.build(
            words_ds.objects, words_ds.metric, d_plus=words_ds.d_plus, seed=7
        ),
    }


@pytest.mark.parametrize("name", ["spb", "mtree", "omni", "mindex"])
def test_insert(benchmark, built, name):
    index = built[name]
    benchmark.pedantic(
        lambda: index.insert(_fresh_word()), rounds=20, iterations=1
    )

"""Benchmarks for Table 6: index construction cost of the four MAMs.

Regenerate the full table with
``python -m repro.experiments.table6_construction``.
"""

import pytest

from repro.baselines import MIndex, MTree, OmniRTree
from repro.core.spbtree import SPBTree


def test_build_spbtree(benchmark, color_ds):
    tree = benchmark(
        lambda: SPBTree.build(
            color_ds.objects, color_ds.metric, d_plus=color_ds.d_plus, seed=7
        )
    )
    assert len(tree) == len(color_ds.objects)


def test_build_mtree(benchmark, color_ds):
    tree = benchmark(
        lambda: MTree.build(color_ds.objects, color_ds.metric, seed=7)
    )
    assert len(tree) == len(color_ds.objects)


def test_build_omnirtree(benchmark, color_ds):
    tree = benchmark(
        lambda: OmniRTree.build(color_ds.objects, color_ds.metric, seed=7)
    )
    assert len(tree) == len(color_ds.objects)


def test_build_mindex(benchmark, color_ds):
    tree = benchmark(
        lambda: MIndex.build(
            color_ds.objects, color_ds.metric, d_plus=color_ds.d_plus, seed=7
        )
    )
    assert len(tree) == len(color_ds.objects)

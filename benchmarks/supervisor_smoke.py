"""Kill-primary-under-load smoke for the self-healing supervisor.

Real clocks, real threads, ~10 seconds: a writer streams inserts and
readers hammer scatter-gather queries against a replicated 2-shard
cluster while the supervisor runs on its own thread.  Partway through,
shard 0's primary is hard-killed; later the zombie comes back up.  The
supervisor must promote within two heartbeat timeouts, re-admit the
zombie as a follower, and the run must end with **zero acknowledged
writes lost**.

Appends one MTTR record to ``results/BENCH_supervisor.json`` and exits
nonzero on any lost write, missed promotion, or failed verify — CI runs
this as the supervisor smoke.

Usage::

    PYTHONPATH=src python benchmarks/supervisor_smoke.py \
        [--size 500] [--duration 10] [--heartbeat-timeout 0.8] \
        [--out results/BENCH_supervisor.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster import ShardedIndex
from repro.datasets import generate_words
from repro.distance import EditDistance
from repro.net.bench import append_series
from repro.replication import PrimaryDownError, ReplicatedIndex, replicate
from repro.service.context import QueryContext
from repro.supervisor import Supervisor


def run(args: argparse.Namespace) -> int:
    words = generate_words(args.size + 400, seed=99)
    base, stream = words[: args.size], words[args.size :]
    edit = EditDistance()

    with tempfile.TemporaryDirectory(prefix="supervisor-smoke-") as tmp:
        directory = os.path.join(tmp, "cluster")
        ShardedIndex.build(
            base, edit, shards=2, num_pivots=3, seed=11
        ).save(directory)
        replicate(directory, edit, replicas=2, read_policy="round-robin")
        idx = ReplicatedIndex.open(
            directory, edit, wal_fsync=False,
            heartbeat_timeout=args.heartbeat_timeout,
        )
        baseline = set(str(o) for o in idx.objects())
        sup = Supervisor(idx, scrub_interval=args.duration / 4.0)
        sup.start()

        acked: list[str] = []
        refused: list[str] = []
        errors: list[BaseException] = []
        reads = [0]
        stop = threading.Event()
        kill_at = args.duration / 3.0
        revive_at = 2.0 * args.duration / 3.0
        started = time.monotonic()
        killed_rid = idx._sets[0].primary.replica_id
        kill_time = [0.0]
        promoted_time = [0.0]

        def beater() -> None:
            # Stand-in for the serving path's liveness signal: beat every
            # member.  The kill uses the forced-down switch, which wins
            # over beats, so beating the corpse is harmless.
            while not stop.wait(args.heartbeat_timeout / 4.0):
                for sid, rset in idx._sets.items():
                    for rid in rset.member_ids():
                        idx.monitor.beat(sid, rid)

        def chaos() -> None:
            time.sleep(kill_at)
            kill_time[0] = time.monotonic()
            idx.monitor.mark_down(0, killed_rid)
            while sup.promotions < 1 and not stop.is_set():
                time.sleep(0.01)
            promoted_time[0] = time.monotonic()
            delay = revive_at - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            idx.monitor.mark_up(0, killed_rid)  # the zombie returns

        def writer() -> None:
            try:
                for i, word in enumerate(stream):
                    if stop.is_set():
                        break
                    try:
                        idx.insert(word)
                        acked.append(word)
                    except PrimaryDownError:
                        refused.append(word)
                    time.sleep(args.duration / len(stream))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def reader() -> None:
            try:
                i = 0
                while not stop.is_set():
                    idx.range_query(
                        base[i % 50], 2.0, context=QueryContext()
                    )
                    reads[0] += 1
                    i += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        beat_t = threading.Thread(target=beater, daemon=True)
        chaos_t = threading.Thread(target=chaos, daemon=True)
        writer_t = threading.Thread(target=writer)
        reader_ts = [
            threading.Thread(target=reader, daemon=True) for _ in range(2)
        ]
        for t in [beat_t, chaos_t, writer_t, *reader_ts]:
            t.start()
        deadline = started + args.duration + 30.0
        writer_t.join(max(1.0, deadline - time.monotonic()))
        chaos_t.join(max(1.0, deadline - time.monotonic()))
        stop.set()
        for t in [beat_t, *reader_ts]:
            t.join(2.0)

        # Let the repair pass finish re-admitting the zombie.
        grace_deadline = time.monotonic() + 4.0 * args.heartbeat_timeout
        while time.monotonic() < grace_deadline:
            status = idx.replication_status()[0]
            if all(m["healthy"] for m in status["members"]):
                break
            time.sleep(0.05)
        for word in refused:  # refused writes go through after failover
            idx.insert(word)

        mttr = promoted_time[0] - kill_time[0] if kill_time[0] else None
        survived = set(str(o) for o in idx.objects())
        lost = (baseline | set(acked) | set(refused)) - survived
        vreport = idx.verify()
        status0 = idx.replication_status()[0]
        record = {
            "bench": "supervisor-smoke",
            "size": args.size,
            "duration_s": args.duration,
            "heartbeat_timeout_s": args.heartbeat_timeout,
            "acked": len(acked),
            "refused": len(refused),
            "reads": reads[0],
            "mttr_s": round(mttr, 4) if mttr is not None else None,
            "promotions": sup.promotions,
            "rejoins": sup.rejoins,
            "repairs": sup.repairs,
            "scrub_passes": sup.scrub_passes,
            "ticks": sup.ticks,
            "lost_acked_writes": len(lost),
            "verify_ok": vreport.ok,
            "shard0_members_healthy": sum(
                1 for m in status0["members"] if m["healthy"]
            ),
        }
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        append_series(args.out, record)
        sup.close()
        idx.close()

    print(
        "supervisor smoke: %d acked, %d refused-then-replayed, %d reads, "
        "mttr %s s, %d promotions, %d rejoins"
        % (
            record["acked"],
            record["refused"],
            record["reads"],
            record["mttr_s"],
            record["promotions"],
            record["rejoins"],
        )
    )
    failures = []
    if errors:
        failures.append(f"worker errors: {errors!r}")
    if lost:
        failures.append(f"lost acked writes: {sorted(lost)[:5]}")
    if sup.promotions < 1 or mttr is None:
        failures.append("no automatic promotion happened")
    elif mttr > 2.0 * args.heartbeat_timeout:
        failures.append(
            f"MTTR {mttr:.2f}s exceeds two heartbeat timeouts "
            f"({2.0 * args.heartbeat_timeout:.2f}s)"
        )
    if sup.rejoins < 1:
        failures.append("zombie was never re-admitted")
    if not vreport.ok:
        failures.append(f"verify failed: {vreport.errors[:3]}")
    if record["shard0_members_healthy"] != len(status0["members"]):
        failures.append(f"shard 0 did not fully heal: {status0}")
    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        return 1
    print("ok: converged with zero acked writes lost", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=500)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--heartbeat-timeout", type=float, default=0.8)
    parser.add_argument(
        "--out", default=os.path.join("results", "BENCH_supervisor.json")
    )
    return run(parser.parse_args())


if __name__ == "__main__":
    sys.exit(main())

"""Benchmarks for Table 5: incremental vs. greedy kNN traversal.

Regenerate the full table with ``python -m repro.experiments.table5_traversal``.
"""

import pytest

from benchmarks.conftest import build_tree


@pytest.fixture(scope="module")
def dna_tree(dna_ds):
    return build_tree(dna_ds)


@pytest.mark.parametrize("traversal", ["incremental", "greedy"])
def test_knn_traversal(benchmark, dna_tree, dna_ds, traversal):
    q = dna_ds.queries[0]
    result = benchmark(lambda: dna_tree.knn_query(q, 8, traversal=traversal))
    assert len(result) == 8

"""Benchmarks for the beyond-paper features: self-join, kNN join,
persistence, and counting queries."""

import pytest

from repro.core.join import knn_join, similarity_self_join
from repro.core.persist import load_tree, save_tree
from repro.core.spbtree import SPBTree
from repro.experiments.common import radius_for


@pytest.fixture(scope="module")
def z_tree(words_ds):
    return SPBTree.build(
        words_ds.objects,
        words_ds.metric,
        d_plus=words_ds.d_plus,
        curve="z",
        seed=7,
    )


def test_self_join(benchmark, z_tree, words_ds):
    epsilon = radius_for(words_ds, 4)
    result = benchmark(lambda: similarity_self_join(z_tree, epsilon))
    assert result.stats.distance_computations > 0


def test_knn_join(benchmark, join_trees):
    _, _, _, tree_q, tree_o = join_trees
    results, stats = benchmark(lambda: knn_join(tree_q, tree_o, 3))
    assert stats.result_size == 3 * len(tree_q)


def test_range_count(benchmark, words_tree, words_ds):
    q = words_ds.queries[0]
    radius = radius_for(words_ds, 16)
    count = benchmark(lambda: words_tree.range_count(q, radius))
    assert count == len(words_tree.range_query(q, radius))


def test_save_and_load(benchmark, words_tree, words_ds, tmp_path_factory):
    def round_trip():
        directory = str(tmp_path_factory.mktemp("idx"))
        save_tree(words_tree, directory)
        return load_tree(directory, words_ds.metric)

    reopened = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert len(reopened) == len(words_tree)


def test_rebuild(benchmark, words_ds):
    def build_and_rebuild():
        tree = SPBTree.build(
            words_ds.objects[:400],
            words_ds.metric,
            d_plus=words_ds.d_plus,
            seed=7,
        )
        return tree.rebuild()

    fresh = benchmark.pedantic(build_and_rebuild, rounds=3, iterations=1)
    assert len(fresh) == 400

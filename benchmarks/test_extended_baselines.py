"""Benchmarks for the related-work baselines (extended comparison):
VP-tree, GHT, BK-tree, LAESA, List of Clusters, PM-tree."""

import pytest

from repro.baselines import (
    LAESA,
    BKTree,
    GHTree,
    ListOfClusters,
    PMTree,
    VPTree,
)


@pytest.fixture(scope="module")
def classic_indexes(words_ds):
    return {
        "vptree": VPTree(words_ds.objects, words_ds.metric, seed=7),
        "ght": GHTree(words_ds.objects, words_ds.metric, seed=7),
        "bktree": BKTree(words_ds.objects, words_ds.metric),
        "laesa": LAESA(words_ds.objects, words_ds.metric, seed=7),
        "lc": ListOfClusters(words_ds.objects, words_ds.metric, seed=7),
        "pmtree": PMTree.build(words_ds.objects, words_ds.metric, seed=7),
    }


@pytest.mark.parametrize(
    "name", ["vptree", "ght", "bktree", "laesa", "lc", "pmtree"]
)
def test_knn_query(benchmark, classic_indexes, words_ds, name):
    index = classic_indexes[name]
    q = words_ds.queries[2]
    result = benchmark(lambda: index.knn_query(q, 8))
    assert len(result) == 8


@pytest.mark.parametrize(
    "name", ["vptree", "ght", "bktree", "laesa", "lc", "pmtree"]
)
def test_range_query(benchmark, classic_indexes, words_ds, name):
    index = classic_indexes[name]
    q = words_ds.queries[2]
    reference = len(classic_indexes["laesa"].range_query(q, 2))
    result = benchmark(lambda: index.range_query(q, 2))
    assert len(result) == reference
